(** ILP Modulo Reliability (Algorithm 1).

    Solve the interconnection-only ILP, check the candidate architecture
    with exact reliability analysis, and — when the requirement is missed —
    learn redundant-path constraints ({!Learn_cons}) and iterate.  Exact
    analysis runs only on concrete configurations, a small number of times:
    the lazy counterpart of compiling reliability into the ILP.

    The loop is resilient: a global {!Archex_resilience.Budget} is
    partitioned across iterations, exhaustion surfaces as a typed
    [Budget_exhausted] (never conflated with infeasibility), and a run can
    checkpoint after every iteration and {!resume} later — deterministic
    replay reconstructs the learned model, so the resumed run reaches the
    same final architecture the uninterrupted run would have. *)

type iteration = {
  index : int;                      (** 1-based *)
  config : Netgraph.Digraph.t;
  cost : float;
  reliability : float;              (** worst-sink failure (conservative
                                        upper end under degradation) *)
  per_sink : (int * float) list;
  k_estimate : int option;          (** ESTPATH's k, when learning ran *)
  new_constraints : int;            (** constraint groups added *)
  solver_time : float;
  analysis_time : float;
  stats : Milp.Solver.run_stats;     (** the SOLVEILP run of this iteration
                                        (all-zero for replayed iterations) *)
  solution : float array;
      (** the raw 0-1 assignment behind [config] (over this iteration's
          model variables) *)
  cert : (Archex_obs.Json.t, string) result option;
      (** per-iteration optimality certificate ({!Archex_cert}); [None]
          when the run was not asked to certify *)
  learned_rows : Archex_obs.Json.t list;
      (** provenance of the constraints this iteration's analysis added
          ({!Learn_cons.drain_learned}); empty on convergence *)
  insight : Archex_obs.Json.t option;
      (** search-effectiveness record of this iteration's solve, present
          only on inspected runs ([?inspect]) and [None] for replayed
          iterations.  One object with: [rows_total] / [rows_carried] /
          [rows_learned] (model rows at solve time, rows shared with the
          previous iteration's model, rows the analysis appended),
          [redundancy_ratio] (carried/total, [null] on the first
          iteration), [decisions_captured] and [prefix_overlap] (longest
          common decision-prefix with the previous solve, over the first
          512 decisions), the running [warm_start_potential] score (mean
          of redundancy and overlap means), and [activity] — one row per
          model constraint with nonzero solver activity: its stable id
          ([row], the insertion index), [name] (declared name or
          ["row<i>"]), [kind] (["template"] / ["requirement"] /
          ["learned"]), birth iteration [born], and the
          [props]/[conflicts]/[binding]/[prunes] counters of
          {!Milp.Row_stats}. *)
}

type trace = iteration list
(** Chronological. *)

val run :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  ?strategy:Learn_cons.strategy ->
  ?backend:Milp.Solver.backend ->
  ?engine:Reliability.Exact.engine ->
  ?max_iterations:int ->
  ?solve_time_limit:float ->
  ?certify:bool ->
  ?cert_node_budget:int ->
  ?budget:Archex_resilience.Budget.t ->
  ?checkpoint:string ->
  ?resume_from:Checkpoint.t ->
  ?jobs:int ->
  ?inspect:bool ->
  ?incremental:bool ->
  Archlib.Template.t -> r_star:float -> trace Synthesis.result
(** Synthesize a minimum-cost architecture with worst-sink failure
    probability at most [r*].  [strategy] defaults to
    {!Learn_cons.Estimated}; [max_iterations] (default 50) guards
    non-termination and reports [Unfeasible (Iteration_limit _)] when
    exhausted.  [solve_time_limit] (default 180 s) caps each [SOLVEILP]
    call; a time-limited call falls back to the solver's best incumbent
    (feasible, possibly not proven optimal — the ε tolerance of
    Theorem 1).

    [budget] (default unlimited) is the run's global allowance.  Each
    iteration first passes through {!Archex_resilience.Budget.check}, each
    [SOLVEILP] call runs under a {!Archex_resilience.Budget.slice} of the
    remaining time (never more than [solve_time_limit]) with the node
    budget enforced and charged inside the solver, and the reliability
    oracle inherits the budget's BDD node ceiling (arming
    {!Rel_analysis}'s degradation ladder).  Exhaustion anywhere yields
    [Unfeasible (Budget_exhausted {error; incumbent; bound})]: the typed
    binding limit, plus the best proven cost lower bound — the cost of the
    last solved relaxation, every such model being a relaxation of the
    final one.

    [checkpoint] (default none) writes an {!Checkpoint} file atomically
    after {e every} recorded iteration, so a killed run can continue with
    {!resume} from the last completed iteration.  [resume_from] replays a
    checkpoint's iterations first — re-running the deterministic learning
    calls (and, when [certify] is set, re-certifying against the replayed
    model, which is exactly the model the original iteration solved) —
    then continues the loop at the next index.

    [certify] (default false) re-proves every iteration's optimum with
    {!Archex_cert.certify} — on the model exactly as solved, before the
    learned constraints of the iteration extend it — and stores the result
    in the iteration's [cert] field (inside a ["certify"] span when
    tracing); [cert_node_budget] caps each certifying search.

    [obs] (default disabled) wraps the run in an ["ilp_mr"] span with one
    ["iteration"] child per loop pass (each enclosing its ["solve"],
    ["reliability"] and ["learn"] spans) and counts [mr.iterations] plus
    the metrics of every layer below; GC gauges are sampled once per
    iteration.  [on_event] receives an [Iteration] progress event (source
    ["ilp-mr"]) after each analyzed candidate, the solver backend's own
    heartbeats, and a [Fallback] event for every degradation step taken
    by the solver or the reliability oracle.

    [jobs] (default 1) runs each candidate's per-sink reliability checks
    on that many domains ({!Rel_analysis.analyze}); combine with the
    [Portfolio] solver backend to also race the ILP solves.  The
    synthesized architecture, costs and reliability figures are identical
    at any [jobs].

    [incremental] (default false) runs the whole loop over one persistent
    solver session ({!Milp.Solver.make_session}): iteration [i+1] resumes
    iteration [i]'s clause database, variable activities and saved phases
    instead of solving from scratch, and each solve is seeded with the
    strongest objective lower bound proved so far (sound because the model
    only gains rows, so the optimum is monotone non-decreasing).  Every
    iteration's optimal cost, the iteration count and the final cost are
    identical to a scratch run; the concrete architecture can differ only
    between {e equal-cost} optima (degenerate ties, e.g. symmetric
    generators), where both runs carry an optimality proof.
    Per-iteration [stats] become deltas whose sum matches the session
    totals.  With [certify], every iteration
    certificate additionally carries a ["session"] stamp recording the
    carried learned-row count and the solve index (ignored — and still
    accepted — by {!Archex_cert.check_chain}).  Composes with [inspect]:
    row ids are insertion indices, which survive the solver's clause-
    database compaction.

    [inspect] (default false; zero cost when off) turns on
    search-effectiveness inspection: every [SOLVEILP] call runs with a
    fresh {!Milp.Row_stats} activity table (which disables presolve, so
    row ids stay stable) and a decision-capturing search-log shim, and
    each recorded iteration carries an [insight] record (see
    {!type:iteration}).  The per-iteration redundancy ratio and the
    running warm-start-potential score are also published as
    [mr.redundancy_ratio] / [mr.warm_start_potential] gauges, which the
    CLI records into the run registry for [archex trend]. *)

val run_with_encoding :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  ?strategy:Learn_cons.strategy ->
  ?backend:Milp.Solver.backend ->
  ?engine:Reliability.Exact.engine ->
  ?max_iterations:int ->
  ?solve_time_limit:float ->
  ?certify:bool ->
  ?cert_node_budget:int ->
  ?budget:Archex_resilience.Budget.t ->
  ?checkpoint:string ->
  ?resume_from:Checkpoint.t ->
  ?jobs:int ->
  ?inspect:bool ->
  ?incremental:bool ->
  Archlib.Template.t -> r_star:float -> Gen_ilp.t * trace Synthesis.result
(** Like {!run} but also returns the encoding, whose model is the final
    (fully extended) ILP — what the explanation report
    ({!Archex_explain}) renders against the last iteration's solution. *)

val resume :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  ?strategy:Learn_cons.strategy ->
  ?backend:Milp.Solver.backend ->
  ?engine:Reliability.Exact.engine ->
  ?max_iterations:int ->
  ?solve_time_limit:float ->
  ?certify:bool ->
  ?cert_node_budget:int ->
  ?budget:Archex_resilience.Budget.t ->
  ?checkpoint:string ->
  ?jobs:int ->
  ?inspect:bool ->
  ?incremental:bool ->
  Archlib.Template.t -> from:Checkpoint.t -> trace Synthesis.result
(** {!run} continued from a checkpoint: [r*] comes from the checkpoint,
    and [strategy] / [backend] default to the checkpointed names (an
    explicit argument still wins — but changing either voids the replay's
    determinism guarantee).  Pass [checkpoint] (typically the same path)
    to keep checkpointing the resumed run.
    @raise Invalid_argument if the checkpoint references edges that are
    not candidates in [template] (checkpoint/template mismatch). *)

val run_checked :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  ?strategy:Learn_cons.strategy ->
  ?backend:Milp.Solver.backend ->
  ?engine:Reliability.Exact.engine ->
  ?max_iterations:int ->
  ?solve_time_limit:float ->
  ?certify:bool ->
  ?cert_node_budget:int ->
  ?budget:Archex_resilience.Budget.t ->
  ?checkpoint:string ->
  ?resume_from:Checkpoint.t ->
  ?jobs:int ->
  ?inspect:bool ->
  ?incremental:bool ->
  Archlib.Template.t -> r_star:float ->
  (trace Synthesis.result, Archex_resilience.Error.t) result
(** The trust-boundary entry point: first {!Archlib.Template.validate_all}
    — {e every} violation of a hostile template is collected into one
    [Invalid_input] — then {!run} under {!Archex_resilience.Error.guard},
    so an escaped [Invalid_argument] / [Failure] / checkpoint-mismatch
    surfaces as a typed error instead of an exception. *)

val certificate_of_trace :
  r_star:float -> trace -> (Archex_obs.Json.t, string) result
(** Assemble the end-to-end certificate chain
    ({!Archex_cert.check_chain}-checkable) from a certified run's trace.
    Errors when the trace is empty, an iteration was run without
    certification, or any per-iteration certification failed. *)

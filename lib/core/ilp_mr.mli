(** ILP Modulo Reliability (Algorithm 1).

    Solve the interconnection-only ILP, check the candidate architecture
    with exact reliability analysis, and — when the requirement is missed —
    learn redundant-path constraints ({!Learn_cons}) and iterate.  Exact
    analysis runs only on concrete configurations, a small number of times:
    the lazy counterpart of compiling reliability into the ILP. *)

type iteration = {
  index : int;                      (** 1-based *)
  config : Netgraph.Digraph.t;
  cost : float;
  reliability : float;              (** exact worst-sink failure *)
  per_sink : (int * float) list;
  k_estimate : int option;          (** ESTPATH's k, when learning ran *)
  new_constraints : int;            (** constraint groups added *)
  solver_time : float;
  analysis_time : float;
  stats : Milp.Solver.run_stats;     (** the SOLVEILP run of this iteration *)
}

type trace = iteration list
(** Chronological. *)

val run :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  ?strategy:Learn_cons.strategy ->
  ?backend:Milp.Solver.backend ->
  ?engine:Reliability.Exact.engine ->
  ?max_iterations:int ->
  ?solve_time_limit:float ->
  Archlib.Template.t -> r_star:float -> trace Synthesis.result
(** Synthesize a minimum-cost architecture with worst-sink failure
    probability at most [r*].  [strategy] defaults to
    {!Learn_cons.Estimated}; [max_iterations] (default 50) guards
    non-termination and reports [Unfeasible] when exhausted.
    [solve_time_limit] (default 180 s) caps each [SOLVEILP] call; a
    time-limited call falls back to the solver's best incumbent (feasible,
    possibly not proven optimal — the ε tolerance of Theorem 1).

    [obs] (default disabled) wraps the run in an ["ilp_mr"] span with one
    ["iteration"] child per loop pass (each enclosing its ["solve"],
    ["reliability"] and ["learn"] spans) and counts [mr.iterations] plus
    the metrics of every layer below.  [on_event] receives an [Iteration]
    progress event (source ["ilp-mr"]) after each analyzed candidate, in
    addition to the solver backend's own heartbeats. *)

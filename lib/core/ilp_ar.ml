module Digraph = Netgraph.Digraph
module Partition = Netgraph.Partition
module Template = Archlib.Template
module Model = Milp.Model
module Lin_expr = Milp.Lin_expr
module Bool_encode = Milp.Bool_encode

type info = {
  approx_estimate : float;
  theorem2_bound : float;
  constraint_count : int;
  variable_count : int;
  cert : (Archex_obs.Json.t, string) result option;
}

(* Chain bookkeeping: 1-based position of each chain type. *)
let chain_of template =
  match Template.type_chain template with
  | Some (_ :: _ as chain) -> chain
  | Some [] | None ->
      invalid_arg "Ilp_ar: template must declare a type chain"

let position chain ty =
  let rec find i = function
    | [] -> None
    | t :: rest -> if t = ty then Some i else find (i + 1) rest
  in
  find 1 chain

(* Per-type failure probability, uniform across members (paper premise). *)
let type_fail template partition ty =
  Reliability.Approx.uniform_type_fail partition
    ~node_fail:(fun v ->
      (Template.component template v).Archlib.Component.fail_prob)
    ty

let compile ?(obs = Archex_obs.Ctx.null) template ~r_star =
  Archex_obs.Trace.with_span (Archex_obs.Ctx.trace obs) "compile"
  @@ fun () ->
  let enc = Gen_ilp.encode ~obs template in
  let st = Learn_cons.init ~obs enc in
  let model = Gen_ilp.model enc in
  let partition = Template.partition template in
  let chain = chain_of template in
  let n_chain = List.length chain in
  let encode_sink sink =
    let sink_ty = Partition.type_of partition sink in
    let sink_fail =
      (Template.component template sink).Archlib.Component.fail_prob
    in
    (* contribution of one chain type: Σ_k k · p_j^k · x_ijk over the
       counting channel of "member is on a source→sink walk" indicators *)
    let type_contribution ty =
      let idx =
        match position chain ty with
        | Some i -> i
        | None -> invalid_arg "Ilp_ar: sink type outside the chain"
      in
      (* exact layered depths: a walk from chain position idx to the sink
         crosses n - idx edges; from a source to position idx, idx - 1 *)
      let depth_to_sink = max 1 (n_chain - idx) in
      let depth_from_source = max 0 (idx - 1) in
      let p = type_fail template partition ty in
      let member_indicator w =
        match Learn_cons.reach_var st ~sink ~depth:depth_to_sink w with
        | None -> None
        | Some to_sink -> (
            match
              Learn_cons.source_connection_var st ~depth:depth_from_source w
            with
            | None -> None
            | Some from_src ->
                if from_src = to_sink then Some to_sink
                else
                  Some
                    (Bool_encode.and_var
                       ~name:(Printf.sprintf "onpath_%d_s%d" w sink)
                       model [ to_sink; from_src ]))
      in
      let members =
        List.filter (fun w -> w <> sink) (Partition.members partition ty)
      in
      let indicators = List.filter_map member_indicator members in
      let channel =
        Bool_encode.count_channel
          ~prefix:(Printf.sprintf "h_s%d_t%d" sink ty)
          model indicators
      in
      (* Eq. 10 restricted to k ≥ 1: the sink must be served through every
         chain type, so h = 0 is forbidden (connectivity, not vacuous
         satisfaction of Eq. 9). *)
      Model.fix model channel.(0) 0.;
      (* a term k·p^k alone above r* already violates Eq. 9: fix those
         selectors to 0.  The smallest admissible k is then a static
         minimum redundancy degree, stated over the cost-bearing variables
         so the objective bound sees it. *)
      let k_min =
        let admissible k =
          float_of_int k *. (p ** float_of_int k) <= r_star +. 1e-300
        in
        let rec find k =
          if k >= Array.length channel then Array.length channel
          else if admissible k then k
          else begin
            Model.fix model channel.(k) 0.;
            find (k + 1)
          end
        in
        find 1
      in
      if k_min > 1 && k_min < Array.length channel then begin
        let deltas =
          List.filter_map (fun w -> Gen_ilp.delta_var enc w) members
        in
        if List.length deltas >= k_min then
          Bool_encode.at_least_k
            ~name:(Printf.sprintf "kmin_use_s%d_t%d" sink ty)
            model deltas k_min;
        let candidate = Template.candidate_graph template in
        let out_edges =
          List.concat_map
            (fun w ->
              List.filter_map
                (fun m -> Gen_ilp.edge_var_opt enc w m)
                (Digraph.succ candidate w))
            members
        in
        if List.length out_edges >= k_min then
          Bool_encode.at_least_k
            ~name:(Printf.sprintf "kmin_edge_s%d_t%d" sink ty)
            model out_edges k_min;
        Bool_encode.at_least_k
          ~name:(Printf.sprintf "kmin_ind_s%d_t%d" sink ty)
          model indicators k_min
      end;
      (* valid usage cut: h_ij = k on-path components of type j means at
         least k instantiated components — over the cost-bearing δs, so the
         objective bound prunes directly *)
      let deltas =
        List.filter_map (fun w -> Gen_ilp.delta_var enc w) members
      in
      let delta_sum =
        Lin_expr.sum (List.map (fun d -> Lin_expr.var d) deltas)
      in
      let weighted_h =
        Lin_expr.of_terms
          (Array.to_list (Array.mapi (fun k x -> (x, float_of_int k))
                            channel))
      in
      Model.add_constraint
        ~name:(Printf.sprintf "usecut_s%d_t%d" sink ty)
        model
        (Lin_expr.sub delta_sum weighted_h)
        Model.Ge 0.;
      (* valid first-edge cut: h on-path components own h distinct outgoing
         edges *)
      let candidate = Template.candidate_graph template in
      let out_edges =
        List.concat_map
          (fun w ->
            List.filter_map
              (fun m -> Gen_ilp.edge_var_opt enc w m)
              (Digraph.succ candidate w))
          members
      in
      let out_sum =
        Lin_expr.sum (List.map (fun e -> Lin_expr.var e) out_edges)
      in
      Model.add_constraint
        ~name:(Printf.sprintf "edgecut_s%d_t%d" sink ty)
        model
        (Lin_expr.sub out_sum weighted_h)
        Model.Ge 0.;
      let terms = ref [] in
      Array.iteri
        (fun k x ->
          if k >= 1 then begin
            let coef = float_of_int k *. (p ** float_of_int k) in
            if coef <> 0. then terms := (x, coef) :: !terms
          end)
        channel;
      Lin_expr.of_terms !terms
    in
    let intermediate = List.filter (fun ty -> ty <> sink_ty) chain in
    let lhs =
      Lin_expr.add
        (Lin_expr.const sink_fail)
        (Lin_expr.sum (List.map type_contribution intermediate))
    in
    Model.add_constraint ~name:(Printf.sprintf "rel_s%d" sink) model lhs
      Model.Le r_star
  in
  List.iter encode_sink (Template.sinks template);
  ( enc,
    { approx_estimate = -1.;
      theorem2_bound = -1.;
      constraint_count = Model.constraint_count model;
      variable_count = Model.var_count model;
      cert = None } )

(* Worst-sink Eq. 7 estimate and Theorem 2 bound on a configuration. *)
let approx_on_config template config =
  let partition = Template.partition template in
  let expanded = Template.expand_redundant_pairs template config in
  let sources = Template.sources template in
  let per_sink sink =
    let link =
      Reliability.Approx.functional_link expanded partition ~sources ~sink
    in
    let estimate =
      Reliability.Approx.failure_estimate partition
        ~type_fail:(type_fail template partition)
        link
    in
    let bound = Reliability.Approx.theorem2_bound partition link in
    (estimate, bound)
  in
  List.fold_left
    (fun (worst_r, worst_b) sink ->
      let r, b = per_sink sink in
      (Float.max worst_r r, Float.min worst_b b))
    (0., infinity)
    (Template.sinks template)

let run ?(obs = Archex_obs.Ctx.null) ?on_event ?backend ?engine
    ?(time_limit = 300.) ?(certify = false) ?cert_node_budget
    ?(budget = Archex_resilience.Budget.unlimited) ?(jobs = 1) template
    ~r_star =
  Archex_obs.Trace.with_span (Archex_obs.Ctx.trace obs) "ilp_ar"
  @@ fun () ->
  let t0 = Archex_obs.Clock.now () in
  let enc, info = compile ~obs template ~r_star in
  let setup_time = Archex_obs.Clock.now () -. t0 in
  let metrics = Archex_obs.Ctx.metrics obs in
  if Archex_obs.Metrics.enabled metrics then begin
    Archex_obs.Metrics.set
      (Archex_obs.Metrics.gauge metrics "ar.variables")
      (float_of_int info.variable_count);
    Archex_obs.Metrics.set
      (Archex_obs.Metrics.gauge metrics "ar.constraints")
      (float_of_int info.constraint_count)
  end;
  match
    Gen_ilp.solve_checked ~obs ?on_event ?backend
      ?time_limit:
        (Some
           (Option.value
              (Archex_resilience.Budget.slice ~frac:1.0 ~cap:time_limit
                 budget)
              ~default:time_limit))
      ~budget enc
  with
  | Gen_ilp.No_solution { stats } ->
      Synthesis.Unfeasible
        ( Synthesis.Proved_infeasible,
          info,
          { Synthesis.setup_time;
            solver_time = stats.Milp.Solver.elapsed;
            analysis_time = 0. } )
  | Gen_ilp.Exhausted { error; stats } ->
      Synthesis.Unfeasible
        ( Synthesis.Budget_exhausted
            { error; incumbent = None; bound = stats.Milp.Solver.best_bound },
          info,
          { Synthesis.setup_time;
            solver_time = stats.Milp.Solver.elapsed;
            analysis_time = 0. } )
  | Gen_ilp.Solved { solution; config; objective = cost; stats } ->
      let cert =
        if certify then
          Some
            (Archex_obs.Trace.with_span (Archex_obs.Ctx.trace obs) "certify"
             @@ fun () ->
             Archex_cert.certify ?node_budget:cert_node_budget
               (Gen_ilp.model enc)
               ~incumbent:(Some (cost, solution)))
        else None
      in
      let report =
        Rel_analysis.analyze ~obs ?on_event ?engine ~budget ~jobs template
          config
      in
      let estimate, bound = approx_on_config template config in
      Archex_obs.Gc_metrics.sample metrics;
      let info =
        { info with
          approx_estimate = estimate;
          theorem2_bound = bound;
          cert }
      in
      Synthesis.Synthesized
        ( Synthesis.architecture template config report,
          info,
          { Synthesis.setup_time;
            solver_time = stats.Milp.Solver.elapsed;
            analysis_time = report.Rel_analysis.elapsed } )

(** [RELANALYSIS]: exact reliability of a configuration (Sec. III).

    Builds the failure model of a configuration (after expanding redundant
    same-type pairs) and computes each sink's exact failure probability with
    one of the {!Reliability.Exact} engines. *)

type report = {
  per_sink : (int * float) list; (** sink node, exact failure probability *)
  worst : float;                 (** the paper's single figure [r] *)
  elapsed : float;               (** seconds spent in analysis *)
}

val fail_model_of_config :
  Archlib.Template.t -> Netgraph.Digraph.t -> Reliability.Fail_model.t
(** Failure model over the configuration's expanded graph: node failure
    probabilities from the components, perfect interconnections, sources
    from the template. *)

val analyze :
  ?obs:Archex_obs.Ctx.t ->
  ?engine:Reliability.Exact.engine ->
  Archlib.Template.t -> Netgraph.Digraph.t -> report
(** Exact [r] for every template sink.  An unreachable sink has [r = 1].
    [elapsed] is wall-clock ({!Archex_obs.Clock}).  [obs] (default
    disabled) wraps the analysis in a ["reliability"] span enclosing one
    ["reliability.sink"] span per sink, bumps [rel.analyses] and feeds a
    [rel.seconds] histogram. *)

val meets : report -> r_star:float -> bool
(** [worst ≤ r*] (within 1e-15 absolute slack). *)

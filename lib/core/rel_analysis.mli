(** [RELANALYSIS]: reliability of a configuration (Sec. III), with an
    anytime degradation ladder.

    Builds the failure model of a configuration (after expanding redundant
    same-type pairs) and computes each sink's failure probability.  The
    default rung is the exact BDD engine; when it outgrows the budget's
    BDD node ceiling — or an [Oracle_failure] fault is injected — the
    analysis degrades, per sink, to analytic cut-set bounds and then to a
    seeded Monte-Carlo confidence interval.  Every rung's outcome is a
    typed {!Archex_resilience.Verdict.t}; [per_sink] and [worst] always
    hold the {e conservative upper end}, so acceptance tests and
    constraint learning stay sound under degradation. *)

type report = {
  per_sink : (int * float) list;
      (** sink node, conservative failure probability (the verdict's
          upper end — exact value when the verdict is exact) *)
  worst : float;                 (** the paper's single figure [r] *)
  elapsed : float;               (** seconds spent in analysis *)
  verdicts : (int * Archex_resilience.Verdict.t) list;
      (** per sink: which ladder rung produced the figure *)
  degraded : int;                (** sinks not analyzed exactly *)
}

val fail_model_of_config :
  Archlib.Template.t -> Netgraph.Digraph.t -> Reliability.Fail_model.t
(** Failure model over the configuration's expanded graph: node failure
    probabilities from the components, perfect interconnections, sources
    from the template. *)

val analyze :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  ?engine:Reliability.Exact.engine ->
  ?budget:Archex_resilience.Budget.t ->
  ?jobs:int ->
  ?pool:Archex_parallel.Pool.t ->
  Archlib.Template.t -> Netgraph.Digraph.t -> report
(** [r] for every template sink.  An unreachable sink has [r = 1].
    [elapsed] is wall-clock ({!Archex_obs.Clock}).

    [jobs] (default 1) analyzes sinks concurrently on that many domains
    ([pool] reuses an existing {!Archex_parallel.Pool}); each sink's
    oracle call builds its own BDD manager, so domains never share one.
    Verdicts are identical at any [jobs]: fault probes are drawn on the
    calling domain in sink order before the fan-out, the sampled rung's
    Monte-Carlo stream is per-sink seeded, and fallback events/trace
    instants are emitted after the join in sink order.

    [budget]'s BDD node ceiling
    ({!Archex_resilience.Budget.bdd_node_limit}) arms the degradation
    ladder; without one (and without injected faults) the analysis is
    always exact.  Each fallback emits a [Fallback] progress event
    (source ["rel-analysis"]) through [on_event], a ["fallback"] trace
    instant, and bumps the [rel.fallbacks] counter.  The sampled rung
    uses {!Reliability.Monte_carlo} with its fixed default seed and
    20 000 trials, so degraded figures are reproducible.

    [obs] (default disabled) wraps the analysis in a ["reliability"]
    span enclosing one ["reliability.sink"] span per sink, bumps
    [rel.analyses] and feeds a [rel.seconds] histogram. *)

val meets : report -> r_star:float -> bool
(** [worst ≤ r*] (within 1e-15 absolute slack).  Conservative under
    degradation: an inexact verdict only passes when its {e upper} end
    does. *)

val is_exact : report -> bool
(** No sink was degraded: [worst] is the exact figure. *)

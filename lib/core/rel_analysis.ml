module Template = Archlib.Template

type report = {
  per_sink : (int * float) list;
  worst : float;
  elapsed : float;
}

let fail_model_of_config template config =
  let expanded = Template.expand_redundant_pairs template config in
  let node_fail =
    Array.init (Template.node_count template) (fun v ->
        (Template.component template v).Archlib.Component.fail_prob)
  in
  Reliability.Fail_model.make expanded
    ~sources:(Template.sources template)
    ~node_fail

let analyze ?(obs = Archex_obs.Ctx.null) ?engine template config =
  let t0 = Archex_obs.Clock.now () in
  let report =
    Archex_obs.Trace.with_span (Archex_obs.Ctx.trace obs) "reliability"
      (fun () ->
        let net = fail_model_of_config template config in
        let per_sink =
          Reliability.Exact.all_sink_failures ~obs ?engine net
            ~sinks:(Template.sinks template)
        in
        let worst =
          List.fold_left (fun acc (_, r) -> Float.max acc r) 0. per_sink
        in
        { per_sink; worst; elapsed = 0. })
  in
  let metrics = Archex_obs.Ctx.metrics obs in
  let elapsed = Archex_obs.Clock.now () -. t0 in
  if Archex_obs.Metrics.enabled metrics then begin
    Archex_obs.Metrics.incr
      (Archex_obs.Metrics.counter metrics "rel.analyses");
    Archex_obs.Metrics.observe
      (Archex_obs.Metrics.histogram metrics "rel.seconds")
      elapsed
  end;
  { report with elapsed }

let meets report ~r_star = report.worst <= r_star +. 1e-15

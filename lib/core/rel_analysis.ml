module Template = Archlib.Template

type report = {
  per_sink : (int * float) list;
  worst : float;
  elapsed : float;
}

let fail_model_of_config template config =
  let expanded = Template.expand_redundant_pairs template config in
  let node_fail =
    Array.init (Template.node_count template) (fun v ->
        (Template.component template v).Archlib.Component.fail_prob)
  in
  Reliability.Fail_model.make expanded
    ~sources:(Template.sources template)
    ~node_fail

let analyze ?engine template config =
  let t0 = Sys.time () in
  let net = fail_model_of_config template config in
  let per_sink =
    Reliability.Exact.all_sink_failures ?engine net
      ~sinks:(Template.sinks template)
  in
  let worst = List.fold_left (fun acc (_, r) -> Float.max acc r) 0. per_sink in
  { per_sink; worst; elapsed = Sys.time () -. t0 }

let meets report ~r_star = report.worst <= r_star +. 1e-15

module Template = Archlib.Template
module Verdict = Archex_resilience.Verdict
module Faults = Archex_resilience.Faults
module Budget = Archex_resilience.Budget

type report = {
  per_sink : (int * float) list;
  worst : float;
  elapsed : float;
  verdicts : (int * Verdict.t) list;
  degraded : int;
}

(* Sampling rung of the degradation ladder: fixed trial count and the
   library's fixed default seed, so a degraded analysis is reproducible. *)
let mc_trials = 20_000

let fail_model_of_config template config =
  let expanded = Template.expand_redundant_pairs template config in
  let node_fail =
    Array.init (Template.node_count template) (fun v ->
        (Template.component template v).Archlib.Component.fail_prob)
  in
  Reliability.Fail_model.make expanded
    ~sources:(Template.sources template)
    ~node_fail

let analyze ?(obs = Archex_obs.Ctx.null) ?on_event ?engine ?budget
    ?(jobs = 1) ?pool template config =
  if jobs < 1 then invalid_arg "Rel_analysis.analyze: jobs must be positive";
  let t0 = Archex_obs.Clock.now () in
  let trace = Archex_obs.Ctx.trace obs in
  let metrics = Archex_obs.Ctx.metrics obs in
  let bdd_node_limit = Option.bind budget Budget.bdd_node_limit in
  let report =
    Archex_obs.Trace.with_span trace "reliability" (fun () ->
        let net = fail_model_of_config template config in
        let sinks = Template.sinks template in
        let fallback ~sink ~rung =
          Archex_obs.Trace.instant
            ~attrs:
              (if Archex_obs.Trace.enabled trace then
                 [ ("sink", Archex_obs.Json.Num (float_of_int sink));
                   ("to", Archex_obs.Json.Str rung) ]
               else [])
            trace "fallback";
          if Archex_obs.Metrics.enabled metrics then
            Archex_obs.Metrics.incr
              (Archex_obs.Metrics.counter metrics "rel.fallbacks");
          match on_event with
          | None -> ()
          | Some f ->
              f
                { Archex_obs.Event.source = "rel-analysis";
                  kind = Archex_obs.Event.Fallback;
                  elapsed = Archex_obs.Clock.now () -. t0;
                  data = [ ("sink", float_of_int sink) ] }
        in
        let parallel =
          (match pool with
          | Some p -> Archex_parallel.Pool.jobs p > 1
          | None -> jobs > 1)
          && List.length sinks > 1
        in
        (* Fault probes advance global plan state: draw them on this
           domain, in sink order, before any fan-out, so an injected
           fault plan hits the same sinks at any [jobs]. *)
        let probed =
          List.map (fun s -> (s, Faults.probe Faults.Oracle_failure)) sinks
        in
        (* In parallel mode the per-sink oracles get a metrics-only ctx:
           metric handles are atomic and the tracer is domain-safe, but
           the search-log sink is single-threaded and the analysis trace
           is kept deterministic — fallback instants/events are emitted
           after the join, in sink order.  The pool itself still gets the
           full ctx: its pool.job spans carry the per-domain scheduling
           picture without touching the oracle-level trace. *)
        let task_obs =
          if parallel then Archex_obs.Ctx.make ~metrics () else obs
        in
        (* The ladder: exact BDD analysis (one fresh BDD manager inside
           each call, hence one per domain), then unpruned cut-set bounds,
           then a seeded Monte-Carlo interval.  Each rung only runs when
           the one above blew its capacity (or an Oracle_failure fault is
           injected in its place). *)
        let sink_verdict (sink, injected) =
          let rungs = ref [] in
          let note rung = rungs := rung :: !rungs in
          let exact_result =
            if injected then
              Error
                (Archex_resilience.Error.Bdd_blowup
                   { stage = "reliability.sink (injected)";
                     nodes = 0;
                     limit = 0 })
            else
              Reliability.Exact.sink_failure_checked ~obs:task_obs ?engine
                ?bdd_node_limit net ~sink
          in
          let verdict =
            match exact_result with
            | Ok r -> Verdict.exact r
            | Error _ -> (
                note "bounded";
                match
                  Reliability.Cut_sets.cut_bounds ~obs:task_obs
                    ?bdd_max_nodes:bdd_node_limit net ~sink
                with
                | lo, hi -> Verdict.bounded ~lo ~hi
                | exception Reliability.Bdd.Node_limit _ ->
                    note "sampled";
                    let est =
                      Reliability.Monte_carlo.estimate_sink_failure
                        ~trials:mc_trials net ~sink
                    in
                    let lo, hi =
                      Reliability.Monte_carlo.confidence_interval est
                    in
                    Verdict.sampled ~lo ~hi)
          in
          (sink, verdict, List.rev !rungs)
        in
        let results =
          if parallel then
            match pool with
            | Some p -> Archex_parallel.Pool.map p sink_verdict probed
            | None ->
                Archex_parallel.Pool.with_pool ~obs
                  ~jobs:(min jobs (List.length sinks))
                  (fun p -> Archex_parallel.Pool.map p sink_verdict probed)
          else List.map sink_verdict probed
        in
        List.iter
          (fun (sink, _, rungs) ->
            List.iter (fun rung -> fallback ~sink ~rung) rungs)
          results;
        let verdicts = List.map (fun (s, v, _) -> (s, v)) results in
        let per_sink =
          List.map (fun (s, v) -> (s, Verdict.upper v)) verdicts
        in
        let worst =
          List.fold_left (fun acc (_, r) -> Float.max acc r) 0. per_sink
        in
        let degraded =
          List.length
            (List.filter (fun (_, v) -> not (Verdict.is_exact v)) verdicts)
        in
        { per_sink; worst; elapsed = 0.; verdicts; degraded })
  in
  let elapsed = Archex_obs.Clock.now () -. t0 in
  if Archex_obs.Metrics.enabled metrics then begin
    Archex_obs.Metrics.incr
      (Archex_obs.Metrics.counter metrics "rel.analyses");
    Archex_obs.Metrics.observe
      (Archex_obs.Metrics.histogram metrics "rel.seconds")
      elapsed
  end;
  { report with elapsed }

let meets report ~r_star = report.worst <= r_star +. 1e-15
let is_exact report = report.degraded = 0

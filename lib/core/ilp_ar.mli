(** ILP with Approximate Reliability (Algorithm 3).

    Compiles the reliability requirement into the ILP itself using the
    approximate algebra of Sec. IV: per sink and component type, counting
    indicators [x_ijk] select the degree of redundancy [h_ij = k]
    (Eqs. 10–11, via walk indicators per Lemma 1) and the linearized Eq. 9

    {[  Σ_{j,k}  k · p_j^k · x_ijk  ≤  r*_i  ]}

    bounds the estimated failure probability.  One monolithic solve, no
    exact-analysis loop; the encoding is polynomial in the template size. *)

type info = {
  approx_estimate : float;
      (** [r~]: worst-sink estimate of Eq. 7 evaluated on the synthesized
          configuration (−1 when unfeasible) *)
  theorem2_bound : float;
      (** worst-sink (smallest) guaranteed [r~/r] ratio on the result *)
  constraint_count : int;  (** rows in the compiled model *)
  variable_count : int;
  cert : (Archex_obs.Json.t, string) result option;
      (** optimality certificate of the monolithic solve ({!Archex_cert});
          [None] when the run was not asked to certify *)
}

val run :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  ?backend:Milp.Solver.backend ->
  ?engine:Reliability.Exact.engine ->
  ?time_limit:float ->
  ?certify:bool ->
  ?cert_node_budget:int ->
  ?budget:Archex_resilience.Budget.t ->
  ?jobs:int ->
  Archlib.Template.t -> r_star:float -> info Synthesis.result
(** Synthesize with the approximate-reliability encoding.  [jobs]
    (default 1) parallelizes the a-posteriori per-sink reliability checks
    ({!Rel_analysis.analyze}) without changing any reported figure.  The template must
    declare a type chain ({!Archlib.Template.set_type_chain}); per Theorem 3
    the result is optimal up to the Theorem 2 error bound, and the exact
    reliability reported in the architecture lets callers check the actual
    requirement a posteriori.  [time_limit] (default 300 s) caps the
    monolithic solve; a time-limited call falls back to the solver's best
    incumbent.

    [budget] (default unlimited) clamps the solve under the global
    allowance and arms {!Rel_analysis}'s degradation ladder for the a
    posteriori check.  A proved-infeasible model reports
    [Unfeasible (Proved_infeasible, _, _)]; an exhausted solve with no
    incumbent reports [Unfeasible (Budget_exhausted _, _, _)] carrying
    the typed binding limit and the search's proven cost lower bound —
    the two are never conflated.

    [obs] (default disabled) wraps the run in an ["ilp_ar"] span enclosing
    the ["compile"], ["solve"] and ["reliability"] spans, and tracks the
    compiled model size in the [ar.variables] / [ar.constraints] gauges.
    [on_event] forwards the solver backend's progress callback.

    [certify] (default false) re-proves the monolithic optimum with
    {!Archex_cert.certify} (inside a ["certify"] span when tracing) and
    stores the result in the info's [cert] field; [cert_node_budget] caps
    the certifying search.
    @raise Invalid_argument if the template declares no type chain or a
    type's members have differing failure probabilities. *)

val compile :
  ?obs:Archex_obs.Ctx.t -> Archlib.Template.t -> r_star:float ->
  Gen_ilp.t * info
(** [GENILP-AR] alone (setup phase): the compiled encoding and its size —
    what Table III's setup column measures.  The info's [approx_estimate]
    and [theorem2_bound] are meaningful only after a solve, and are [-1]
    here. *)

(** Shared result types and reports for the synthesis algorithms. *)

type architecture = {
  config : Netgraph.Digraph.t;   (** selected edges over the template *)
  cost : float;                  (** Eq. 1 value *)
  reliability : float;           (** exact worst-sink failure probability *)
  per_sink : (int * float) list;
}

type timing = {
  setup_time : float;     (** problem generation *)
  solver_time : float;    (** total time inside SOLVEILP *)
  analysis_time : float;  (** total time inside RELANALYSIS *)
}

type 'trace result =
  | Synthesized of architecture * 'trace * timing
  | Unfeasible of 'trace * timing

val architecture :
  Archlib.Template.t -> Netgraph.Digraph.t -> Rel_analysis.report ->
  architecture

val pp_architecture :
  Archlib.Template.t -> Format.formatter -> architecture -> unit
(** Human-readable report: cost, reliability, used components, edges. *)

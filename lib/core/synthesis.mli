(** Shared result types and reports for the synthesis algorithms. *)

type architecture = {
  config : Netgraph.Digraph.t;   (** selected edges over the template *)
  cost : float;                  (** Eq. 1 value *)
  reliability : float;           (** exact worst-sink failure probability *)
  per_sink : (int * float) list;
}

type timing = {
  setup_time : float;     (** problem generation *)
  solver_time : float;    (** total time inside SOLVEILP *)
  analysis_time : float;  (** total time inside RELANALYSIS *)
}

type failure_reason =
  | Proved_infeasible
      (** the solver {e proved} no configuration satisfies the
          requirements — a fact about the problem *)
  | Saturated
      (** [LEARNCONS] can enforce nothing further (Algorithm 1's
          UNFEASIBLE): the reliability target is out of the template's
          reach *)
  | Iteration_limit of int
      (** the ILP-MR iteration guard tripped — a fact about the budget,
          not the problem *)
  | Budget_exhausted of {
      error : Archex_resilience.Error.t;
          (** which budget ran out (timeout, node budget, …) *)
      incumbent : float option;
          (** best feasible objective seen before exhaustion, if any *)
      bound : float option;
          (** proven objective lower bound at exhaustion, if any: the
              true optimum lies in [[bound, incumbent]] *)
    }
      (** the run stopped because a global resource limit was hit.
          Crucially {e not} the same as {!Proved_infeasible}: a solver
          [Limit_reached] with no incumbent used to read as
          infeasibility — silent truncation.  Now the distinction is
          typed and reported. *)

type 'trace result =
  | Synthesized of architecture * 'trace * timing
  | Unfeasible of failure_reason * 'trace * timing

val failure_reason_code : failure_reason -> string
(** Stable tag: ["infeasible"], ["saturated"], ["iteration-limit"],
    ["budget-exhausted"]. *)

val pp_failure_reason : Format.formatter -> failure_reason -> unit
val failure_reason_to_json : failure_reason -> Archex_obs.Json.t

val is_budget_failure : failure_reason -> bool
(** True when the failure says nothing about the problem itself —
    rerunning with a larger budget (or resuming from a checkpoint) may
    still synthesize an architecture. *)

val architecture :
  Archlib.Template.t -> Netgraph.Digraph.t -> Rel_analysis.report ->
  architecture

val pp_architecture :
  Archlib.Template.t -> Format.formatter -> architecture -> unit
(** Human-readable report: cost, reliability, used components, edges. *)

module Digraph = Netgraph.Digraph
module Template = Archlib.Template

type architecture = {
  config : Digraph.t;
  cost : float;
  reliability : float;
  per_sink : (int * float) list;
}

type timing = {
  setup_time : float;
  solver_time : float;
  analysis_time : float;
}

type failure_reason =
  | Proved_infeasible
  | Saturated
  | Iteration_limit of int
  | Budget_exhausted of {
      error : Archex_resilience.Error.t;
      incumbent : float option;
      bound : float option;
    }

type 'trace result =
  | Synthesized of architecture * 'trace * timing
  | Unfeasible of failure_reason * 'trace * timing

let failure_reason_code = function
  | Proved_infeasible -> "infeasible"
  | Saturated -> "saturated"
  | Iteration_limit _ -> "iteration-limit"
  | Budget_exhausted _ -> "budget-exhausted"

let pp_failure_reason ppf = function
  | Proved_infeasible ->
      Format.pp_print_string ppf "proved infeasible: no configuration can \
                                  satisfy the requirements"
  | Saturated ->
      Format.pp_print_string ppf
        "saturated: no further redundant path can be enforced"
  | Iteration_limit n ->
      Format.fprintf ppf "iteration limit (%d) reached without convergence" n
  | Budget_exhausted { error; incumbent; bound } ->
      Format.fprintf ppf "budget exhausted (%a)" Archex_resilience.Error.pp
        error;
      (match incumbent with
      | Some c -> Format.fprintf ppf "; best incumbent cost %g" c
      | None -> Format.fprintf ppf "; no incumbent found");
      (match bound with
      | Some b -> Format.fprintf ppf ", proven cost lower bound %g" b
      | None -> ())

let failure_reason_to_json reason =
  let module J = Archex_obs.Json in
  let base = [ ("reason", J.Str (failure_reason_code reason)) ] in
  J.Obj
    (match reason with
    | Proved_infeasible | Saturated -> base
    | Iteration_limit n -> base @ [ ("limit", J.Num (float_of_int n)) ]
    | Budget_exhausted { error; incumbent; bound } ->
        base
        @ [ ("error", Archex_resilience.Error.to_json error) ]
        @ (match incumbent with
          | Some c -> [ ("incumbent", J.Num c) ]
          | None -> [])
        @ (match bound with Some b -> [ ("bound", J.Num b) ] | None -> []))

let is_budget_failure = function
  | Budget_exhausted _ -> true
  | Proved_infeasible | Saturated | Iteration_limit _ -> false

let architecture template config (report : Rel_analysis.report) =
  { config;
    cost = Template.configuration_cost template config;
    reliability = report.Rel_analysis.worst;
    per_sink = report.Rel_analysis.per_sink }

let pp_architecture template ppf arch =
  let name v = (Template.component template v).Archlib.Component.name in
  Format.fprintf ppf "@[<v>cost: %g@,worst failure probability: %.3e@,"
    arch.cost arch.reliability;
  Format.fprintf ppf "components: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.pp_print_string ppf (name v)))
    (Digraph.used_nodes arch.config);
  Format.fprintf ppf "edges: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (u, v) -> Format.fprintf ppf "%s->%s" (name u) (name v)))
    (Digraph.edges arch.config);
  Format.fprintf ppf "per-sink failure: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (s, r) -> Format.fprintf ppf "%s=%.3e" (name s) r))
    arch.per_sink

module Digraph = Netgraph.Digraph
module Template = Archlib.Template

type architecture = {
  config : Digraph.t;
  cost : float;
  reliability : float;
  per_sink : (int * float) list;
}

type timing = {
  setup_time : float;
  solver_time : float;
  analysis_time : float;
}

type 'trace result =
  | Synthesized of architecture * 'trace * timing
  | Unfeasible of 'trace * timing

let architecture template config (report : Rel_analysis.report) =
  { config;
    cost = Template.configuration_cost template config;
    reliability = report.Rel_analysis.worst;
    per_sink = report.Rel_analysis.per_sink }

let pp_architecture template ppf arch =
  let name v = (Template.component template v).Archlib.Component.name in
  Format.fprintf ppf "@[<v>cost: %g@,worst failure probability: %.3e@,"
    arch.cost arch.reliability;
  Format.fprintf ppf "components: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.pp_print_string ppf (name v)))
    (Digraph.used_nodes arch.config);
  Format.fprintf ppf "edges: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (u, v) -> Format.fprintf ppf "%s->%s" (name u) (name v)))
    (Digraph.edges arch.config);
  Format.fprintf ppf "per-sink failure: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (s, r) -> Format.fprintf ppf "%s=%.3e" (name s) r))
    arch.per_sink

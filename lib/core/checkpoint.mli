(** ILP-MR checkpoints: enough per-iteration state to replay a run
    deterministically.

    A checkpoint does {e not} snapshot the solver or the learned
    constraint rows themselves — it records, per completed iteration, the
    solved configuration and the analysis figures that drove
    [LEARNCONS].  Because {!Learn_cons.learn} is deterministic in those
    inputs, {!Ilp_mr.resume} reconstructs the extended model by replaying
    the learning calls, then continues the loop from the next iteration.
    Replayed iterations can even be re-certified: at each replay step the
    model is exactly the model the original iteration solved (learning
    happens after certification, in both live and replayed runs), so a
    resumed run still assembles a checkable certificate chain.

    The on-disk form is a single JSON object tagged
    [{"format": "archex-mr-ckpt", "version": 1}].  {!save} writes
    atomically (temp file + rename): a kill mid-write leaves the previous
    checkpoint intact. *)

type iteration = {
  index : int;                     (** 1-based, as in {!Ilp_mr.iteration} *)
  solution : float array;          (** raw 0-1 assignment as solved *)
  edges : (int * int) list;        (** the configuration's edges *)
  cost : float;
  reliability : float;             (** worst-sink failure of the analysis *)
  per_sink : (int * float) list;
  k_estimate : int option;
      (** [Some k] iff the iteration learned constraints — the replay
          re-runs {!Learn_cons.learn} exactly for these *)
  new_constraints : int;
}

type t = {
  r_star : float;                  (** the run's reliability target *)
  strategy : string option;        (** ["estimated"] / ["lazy-one-path"] *)
  backend : string option;         (** ["pb"] / ["lp-bb"] / ["brute"] *)
  iterations : iteration list;     (** chronological *)
}

val to_json : t -> Archex_obs.Json.t
val of_json : Archex_obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val save : string -> t -> (unit, string) result
(** Atomic {e durable} write: the ".tmp" sibling is flushed and
    [fsync]ed before the rename, so a crash at any point leaves either
    the previous checkpoint or the complete new one — never a
    truncated file behind a durable rename. *)

val load : string -> (t, string) result

val load_checked : string -> (t, Archex_resilience.Error.t) result
(** {!load} at the trust boundary: an unreadable, truncated or corrupt
    checkpoint surfaces as a typed
    [{!Archex_resilience.Error.Invalid_input}] carrying the decoder's
    message, never an exception. *)

module Digraph = Netgraph.Digraph
module Template = Archlib.Template
module Requirement = Archlib.Requirement
module Model = Milp.Model
module Lin_expr = Milp.Lin_expr
module Bool_encode = Milp.Bool_encode

type t = {
  template : Template.t;
  model : Model.t;
  edges : (int * int, Model.var) Hashtbl.t;
  deltas : Model.var option array;
}

let template t = t.template
let model t = t.model

let edge_var t u v = Hashtbl.find t.edges (u, v)
let edge_var_opt t u v = Hashtbl.find_opt t.edges (u, v)

let delta_var t v =
  if v < 0 || v >= Array.length t.deltas then
    invalid_arg "Gen_ilp.delta_var";
  t.deltas.(v)

let require_edge t (u, v) =
  match edge_var_opt t u v with
  | Some x -> x
  | None ->
      invalid_arg
        (Printf.sprintf
           "Gen_ilp: requirement references non-candidate edge (%d,%d)" u v)

let require_delta t v =
  match delta_var t v with
  | Some x -> x
  | None ->
      invalid_arg
        (Printf.sprintf
           "Gen_ilp: requirement references isolated node %d (no candidate \
            edges)"
           v)

let cmp_of_req = function
  | Requirement.Le -> Model.Le
  | Requirement.Ge -> Model.Ge
  | Requirement.Eq -> Model.Eq

let lower_requirement t index req =
  let name = Printf.sprintf "req%d" index in
  match req with
  | Requirement.Edge_card (edges, cmp, k) ->
      let expr =
        Lin_expr.sum
          (List.map (fun e -> Lin_expr.var (require_edge t e)) edges)
      in
      Model.add_constraint ~name t.model expr (cmp_of_req cmp)
        (float_of_int k)
  | Requirement.Linear_edges (terms, cmp, rhs) ->
      let expr =
        Lin_expr.of_terms
          (List.map (fun (e, w) -> (require_edge t e, w)) terms)
      in
      Model.add_constraint ~name t.model expr (cmp_of_req cmp) rhs
  | Requirement.Conditional_connect (ante, cons) ->
      (* Eq. 3: each antecedent edge implies the disjunction of the
         consequent edges. *)
      let cons_vars = List.map (require_edge t) cons in
      let imply e =
        Bool_encode.implies_or ~name t.model (require_edge t e) cons_vars
      in
      List.iter imply ante
  | Requirement.Usage_balance (providers, consumers) ->
      let term sign (v, w) = (require_delta t v, sign *. w) in
      let expr =
        Lin_expr.of_terms
          (List.map (term 1.) providers @ List.map (term (-1.)) consumers)
      in
      Model.add_constraint ~name t.model expr Model.Ge 0.
  | Requirement.Require_used v ->
      Model.fix t.model (require_delta t v) 1.
  | Requirement.Usage_order vs ->
      let rec chain = function
        | a :: (b :: _ as rest) ->
            Model.add_constraint ~name t.model
              (Lin_expr.sub
                 (Lin_expr.var (require_delta t a))
                 (Lin_expr.var (require_delta t b)))
              Model.Ge 0.;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain vs

let encode ?(obs = Archex_obs.Ctx.null) template =
  Archex_obs.Trace.with_span (Archex_obs.Ctx.trace obs) "encode" @@ fun () ->
  let model = Model.create () in
  let edges = Hashtbl.create 64 in
  let cand = Template.candidate_edges template in
  List.iter
    (fun (u, v) ->
      let x = Model.bool_var ~name:(Printf.sprintf "e_%d_%d" u v) model in
      Hashtbl.add edges (u, v) x)
    cand;
  let n = Template.node_count template in
  let t =
    { template; model; edges; deltas = Array.make n None }
  in
  (* Usage indicators δ_v = ∨ over incident candidate edges. *)
  let cand_graph = Template.candidate_graph template in
  for v = 0 to n - 1 do
    let incident =
      List.map (fun u -> Hashtbl.find edges (u, v)) (Digraph.pred cand_graph v)
      @ List.map (fun w -> Hashtbl.find edges (v, w))
          (Digraph.succ cand_graph v)
    in
    if incident <> [] then
      t.deltas.(v) <-
        Some
          (Bool_encode.or_var ~name:(Printf.sprintf "delta_%d" v) model
             incident)
  done;
  (* Pair indicators for switch costs: y_{ij} = e_ij ∨ e_ji (single edge
     pairs reuse the edge variable). *)
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      let key = (min u v, max u v) in
      if not (Hashtbl.mem pairs key) then Hashtbl.add pairs key ())
    cand;
  let objective = ref Lin_expr.zero in
  for v = 0 to n - 1 do
    match t.deltas.(v) with
    | None -> ()
    | Some d ->
        let c = (Template.component template v).Archlib.Component.cost in
        if c <> 0. then objective := Lin_expr.add_term !objective d c
  done;
  let add_pair (i, j) () =
    let cost = Template.switch_cost template i j in
    if cost <> 0. then begin
      let y =
        match (Hashtbl.find_opt edges (i, j), Hashtbl.find_opt edges (j, i))
        with
        | Some a, Some b ->
            Bool_encode.or_var ~name:(Printf.sprintf "sw_%d_%d" i j) model
              [ a; b ]
        | Some a, None | None, Some a -> a
        | None, None -> assert false
      in
      objective := Lin_expr.add_term !objective y cost
    end
  in
  Hashtbl.iter add_pair pairs;
  Model.set_objective model !objective;
  List.iteri (fun i req -> lower_requirement t i req)
    (Template.requirements template);
  t

let config_of_solution t solution =
  let g = Digraph.create (Template.node_count t.template) in
  Hashtbl.iter
    (fun (u, v) x ->
      if Milp.Solver.solution_value solution x then Digraph.add_edge g u v)
    t.edges;
  g

type checked =
  | Solved of {
      solution : float array;
      config : Digraph.t;
      objective : float;
      stats : Milp.Solver.run_stats;
    }
  | No_solution of { stats : Milp.Solver.run_stats }
  | Exhausted of {
      error : Archex_resilience.Error.t;
      stats : Milp.Solver.run_stats;
    }

let solve_checked ?obs ?on_event ?backend ?rows ?time_limit ?budget ?session
    ?lower_bound t =
  match
    Milp.Solver.solve ?obs ?on_event ?backend ?rows ?time_limit ?budget
      ?session ?lower_bound t.model
  with
  | Milp.Solver.Optimal { objective; solution }, stats ->
      Solved
        { solution;
          config = config_of_solution t solution;
          objective;
          stats }
  | Milp.Solver.Infeasible, stats -> No_solution { stats }
  | Milp.Solver.Unbounded, stats ->
      Exhausted
        { error =
            Archex_resilience.Error.Invalid_input
              [ "Gen_ilp: unbounded model (costs must be non-negative)" ];
          stats }
  | Milp.Solver.Limit_reached { incumbent = Some (objective, solution) },
    stats ->
      (* time-limited solve: the incumbent is feasible, possibly not proven
         optimal — acceptable inside the synthesis loops (the paper's own
         solver ran with a MIP tolerance); the caller sees it in the cost *)
      Logs.warn (fun m ->
          m "Gen_ilp.solve: time limit reached; using incumbent (cost %g)"
            objective);
      Solved
        { solution;
          config = config_of_solution t solution;
          objective;
          stats }
  | Milp.Solver.Limit_reached { incumbent = None }, stats ->
      (* the old silent-truncation hazard: this is NOT infeasibility *)
      let error =
        match budget with
        | Some b -> Archex_resilience.Budget.exhaustion ~stage:"solve" b
        | None ->
            Archex_resilience.Error.Timeout
              { stage = "solve";
                elapsed = stats.Milp.Solver.elapsed;
                limit = Option.value time_limit ~default:0. }
      in
      Exhausted { error; stats }

let solve_raw ?obs ?on_event ?backend ?time_limit t =
  match solve_checked ?obs ?on_event ?backend ?time_limit t with
  | Solved { solution; config; objective; stats } ->
      Some (solution, config, objective, stats)
  | No_solution _ -> None
  | Exhausted { error; _ } ->
      failwith
        (Printf.sprintf "Gen_ilp.solve: %s"
           (Archex_resilience.Error.to_string error))

let solve ?obs ?on_event ?backend ?time_limit t =
  Option.map
    (fun (_, config, objective, stats) -> (config, objective, stats))
    (solve_raw ?obs ?on_event ?backend ?time_limit t)

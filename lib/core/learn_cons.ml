module Digraph = Netgraph.Digraph
module Bool_matrix = Netgraph.Bool_matrix
module Partition = Netgraph.Partition
module Paths = Netgraph.Paths
module Template = Archlib.Template
module Model = Milp.Model
module Bool_encode = Milp.Bool_encode

type state = {
  enc : Gen_ilp.t;
  obs : Archex_obs.Ctx.t;
  candidate : Digraph.t;
  partition : Partition.t;
  reach : (int * int * int, Model.var option) Hashtbl.t;
      (* (sink, depth, node) → walk-indicator var *)
  src_reach : (int * int, Model.var option) Hashtbl.t;
      (* (depth, node) → source-connection var *)
  enforced : (int * int, int) Hashtbl.t;
      (* (sink, type) → strongest target enforced so far *)
  mutable true_var : Model.var option;
  mutable pending_rows : (string * int * int * int * string) list;
      (* (row name, sink, type, target, role), newest first: rows added by
         add_path during the current learn call, awaiting the call-level
         tags (k / reliability / r_star) *)
  mutable learned_log : Archex_obs.Json.t list;
      (* tagged descriptors not yet drained, oldest first *)
}

let init ?(obs = Archex_obs.Ctx.null) enc =
  let template = Gen_ilp.template enc in
  { enc;
    obs;
    candidate = Template.candidate_graph template;
    partition = Template.partition template;
    reach = Hashtbl.create 256;
    src_reach = Hashtbl.create 256;
    enforced = Hashtbl.create 32;
    true_var = None;
    pending_rows = [];
    learned_log = [] }

type strategy =
  | Estimated
  | Lazy_one_path

type outcome =
  | Learned of { k : int; new_constraints : int }
  | Saturated

let model st = Gen_ilp.model st.enc

(* A Boolean fixed to 1 (shared), for trivially-true indicators. *)
let true_var st =
  match st.true_var with
  | Some x -> x
  | None ->
      let x = Model.bool_var ~name:"const_true" (model st) in
      Model.fix (model st) x 1.;
      st.true_var <- Some x;
      x

(* Walk indicator to [sink]:
     reach(w, 1)   = e_{w,sink}
     reach(w, d)   = e_{w,sink} ∨ ∨_{m ∈ succ(w), m ≠ sink}
                                     (e_{w,m} ∧ reach(m, d-1)) *)
let rec reach_var st ~sink ~depth w =
  if depth <= 0 || w = sink then None
  else begin
    let key = (sink, depth, w) in
    match Hashtbl.find_opt st.reach key with
    | Some v -> v
    | None ->
        (* insert a placeholder to cut recursion on cyclic candidates: a
           walk that revisits w within the same unrolling is dominated *)
        Hashtbl.add st.reach key None;
        let direct =
          Option.to_list (Gen_ilp.edge_var_opt st.enc w sink)
        in
        let via m =
          if m = sink then None
          else
            match reach_var st ~sink ~depth:(depth - 1) m with
            | None -> None
            | Some r ->
                let e = Gen_ilp.edge_var st.enc w m in
                Some
                  (Bool_encode.and_var
                     ~name:(Printf.sprintf "step_%d_%d_d%d" w m depth)
                     (model st) [ e; r ])
        in
        let hops = List.filter_map via (Digraph.succ st.candidate w) in
        let v =
          match direct @ hops with
          | [] -> None
          | [ x ] -> Some x
          | xs ->
              Some
                (Bool_encode.or_var
                   ~name:(Printf.sprintf "reach_%d_to_%d_d%d" w sink depth)
                   (model st) xs)
        in
        Hashtbl.replace st.reach key v;
        v
  end

let is_source st w = List.mem w (Template.sources (Gen_ilp.template st.enc))

(* Source connection: src(w, d) = w is a source, or some predecessor
   connected at depth d-1 feeds w. *)
let rec source_connection_var st ~depth w =
  if is_source st w then Some (true_var st)
  else if depth <= 0 then None
  else begin
    let key = (depth, w) in
    match Hashtbl.find_opt st.src_reach key with
    | Some v -> v
    | None ->
        Hashtbl.add st.src_reach key None;
        let via p =
          let e = Gen_ilp.edge_var st.enc p w in
          if is_source st p then Some e
          else
            match source_connection_var st ~depth:(depth - 1) p with
            | None -> None
            | Some r ->
                Some
                  (Bool_encode.and_var
                     ~name:(Printf.sprintf "src_step_%d_%d_d%d" p w depth)
                     (model st) [ e; r ])
        in
        let feeds = List.filter_map via (Digraph.pred st.candidate w) in
        let v =
          match feeds with
          | [] -> None
          | [ x ] -> Some x
          | xs ->
              Some
                (Bool_encode.or_var
                   ~name:(Printf.sprintf "src_%d_d%d" w depth)
                   (model st) xs)
        in
        Hashtbl.replace st.src_reach key v;
        v
  end

(* Chain position (1-based) of each type, or None when no chain is set. *)
let chain_position st ty =
  match Template.type_chain (Gen_ilp.template st.enc) with
  | None -> None
  | Some chain ->
      let rec find i = function
        | [] -> None
        | t :: rest -> if t = ty then Some i else find (i + 1) rest
      in
      find 1 chain

let chain_length st =
  match Template.type_chain (Gen_ilp.template st.enc) with
  | None -> Partition.type_count st.partition
  | Some chain -> List.length chain

(* Depth of the Eq. 6 walk indicator for a type.  On a layered reduced-path
   template the walk from a type at chain position i to a sink crosses
   exactly n - i edges, so the indicator only needs that depth (the paper
   uses n - i + 1; the tighter unrolling encodes the same walks on layered
   candidates and keeps the deepest layer's indicators equal to plain edge
   variables).  Without a declared chain, fall back to the node count. *)
let depth_for st ty =
  match chain_position st ty with
  | Some i -> max 1 (chain_length st - i)
  | None -> Digraph.node_count st.candidate

(* Number of components of type [ty] with a walk (of the type's depth) to
   the sink in the current configuration: Σ_{w ∈ Π_i} η*[w, v]. *)
let current_count st config ~sink ty =
  let eta =
    Bool_matrix.walk_indicator (Bool_matrix.of_graph config) (depth_for st ty)
  in
  List.length
    (List.filter
       (fun w -> w <> sink && Bool_matrix.get eta w sink)
       (Partition.members st.partition ty))

(* ADDPATH: enforce ≥ target components of [ty] with a path to [sink].
   Returns true when a (strictly stronger than before) row was added. *)
let add_path st ~sink ty ~target =
  let members =
    List.filter (fun w -> w <> sink) (Partition.members st.partition ty)
  in
  let capacity = List.length members in
  let target = min target capacity in
  let key = (sink, ty) in
  let previous =
    Option.value (Hashtbl.find_opt st.enforced key) ~default:0
  in
  if target <= previous then false
  else begin
    let depth = depth_for st ty in
    let indicators =
      List.filter_map (fun w -> reach_var st ~sink ~depth w) members
    in
    (* when the template cannot host the full target, enforce the maximum
       available number of connected components instead *)
    let target = min target (List.length indicators) in
    if target <= previous then false
    else begin
      let record role name =
        st.pending_rows <- (name, sink, ty, target, role) :: st.pending_rows;
        name
      in
      Bool_encode.at_least_k
        ~name:
          (record "addpath"
             (Printf.sprintf "addpath_s%d_t%d_k%d" sink ty target))
        (model st) indicators target;
      (* valid usage cut: a component connected to the sink is instantiated,
         so at least [target] components of the type must be used — stated
         directly over the cost-bearing δ variables, which lets the solver's
         objective bound prune without unrolling the walk indicators *)
      let deltas =
        List.filter_map (fun w -> Gen_ilp.delta_var st.enc w) members
      in
      if List.length deltas >= target then
        Bool_encode.at_least_k
          ~name:
            (record "usecut"
               (Printf.sprintf "usecut_s%d_t%d_k%d" sink ty target))
          (model st) deltas target;
      (* valid first-edge cut: the [target] connected components each start
         their walk to the sink with an outgoing edge of their own, and
         distinct components own distinct edges *)
      let out_edges =
        List.concat_map
          (fun w ->
            List.filter_map
              (fun m -> Gen_ilp.edge_var_opt st.enc w m)
              (Digraph.succ st.candidate w))
          members
      in
      if List.length out_edges >= target then
        Bool_encode.at_least_k
          ~name:
            (record "edgecut"
               (Printf.sprintf "edgecut_s%d_t%d_k%d" sink ty target))
          (model st) out_edges target;
      Hashtbl.replace st.enforced key target;
      true
    end
  end

(* Types eligible for ADDPATH at a sink: every failing type except the
   sink's own, ordered closest-to-the-sink first (T_{n-1}, …, T_1) when a
   chain is declared.  Perfect types are skipped: extra redundancy there
   cannot change any failure probability, only the cost. *)
let eligible_types st ~sink =
  let template = Gen_ilp.template st.enc in
  let sink_ty = Partition.type_of st.partition sink in
  let type_fails ty =
    List.exists
      (fun w ->
        (Template.component template w).Archlib.Component.fail_prob > 0.)
      (Partition.members st.partition ty)
  in
  let eligible ty = ty <> sink_ty && type_fails ty in
  match Template.type_chain template with
  | Some chain -> List.rev (List.filter eligible chain)
  | None ->
      List.filter eligible
        (List.init (Partition.type_count st.partition) Fun.id)

(* FINDMINREDTYPE: unsaturated types ordered by fewest connected
   components first (eligibility already excludes perfect types). *)
let min_red_types st config ~sink =
  let candidates =
    List.filter_map
      (fun ty ->
        let members =
          List.filter (fun w -> w <> sink)
            (Partition.members st.partition ty)
        in
        let count = current_count st config ~sink ty in
        let enforced =
          Option.value (Hashtbl.find_opt st.enforced (sink, ty)) ~default:0
        in
        if count < List.length members && enforced < List.length members
        then Some (ty, count)
        else None)
      (eligible_types st ~sink)
  in
  List.map fst
    (List.stable_sort (fun (_, a) (_, b) -> compare a b) candidates)

(* ESTPATH: k = ⌊ log(r*/r) / log ρ ⌋ with ρ the failure probability of the
   most reliable source→sink path of the worst sink in the current
   configuration (candidate graph as fallback when the sink is cut off). *)
let est_path st ~config ~reliability ~r_star =
  let template = Gen_ilp.template st.enc in
  let net = Rel_analysis.fail_model_of_config template config in
  let sources = Template.sources template in
  let best_path_failure sink =
    let graph_paths g =
      Paths.simple_paths ~max_count:5000 g ~sources ~sink
    in
    let paths =
      match graph_paths (Reliability.Fail_model.graph net) with
      | [] -> graph_paths st.candidate
      | ps -> ps
    in
    List.fold_left
      (fun acc p ->
        Float.min acc (Reliability.Fail_model.path_failure_probability net p))
      1. paths
  in
  let rho =
    List.fold_left
      (fun acc sink -> Float.max acc (best_path_failure sink))
      0.
      (Template.sinks template)
  in
  if r_star >= reliability then 0
  else if rho <= 0. || rho >= 1. then 0
  else begin
    let k = Float.to_int (log (r_star /. reliability) /. log rho) in
    max 0 k
  end

let learn ?(strategy = Estimated) st ~config ~reliability ~r_star =
  Archex_obs.Trace.with_span (Archex_obs.Ctx.trace st.obs) "learn"
  @@ fun () ->
  let template = Gen_ilp.template st.enc in
  let sinks = Template.sinks template in
  let k =
    match strategy with
    | Lazy_one_path -> 0
    | Estimated -> est_path st ~config ~reliability ~r_star
  in
  let added = ref 0 in
  let per_sink sink =
    if k >= 1 then begin
      let per_type ty =
        let current = current_count st config ~sink ty in
        if add_path st ~sink ty ~target:(current + k) then incr added
      in
      List.iter per_type (eligible_types st ~sink)
    end
    else begin
      (* one more path towards the least redundant type that still accepts
         a strengthening *)
      let try_type done_ ty =
        done_
        ||
        let current = current_count st config ~sink ty in
        add_path st ~sink ty ~target:(current + 1)
      in
      if List.fold_left try_type false (min_red_types st config ~sink) then
        incr added
    end
  in
  List.iter per_sink sinks;
  (* tag the rows added by this call with its analysis context — the
     provenance chain that certificate chains and explanation reports
     surface ("this cut exists because reliability r missed r_star") *)
  let module J = Archex_obs.Json in
  let tagged =
    List.rev_map
      (fun (name, sink, ty, target, role) ->
        J.Obj
          [ ("name", J.Str name);
            ("role", J.Str role);
            ("sink", J.Num (float_of_int sink));
            ("type", J.Num (float_of_int ty));
            ("target", J.Num (float_of_int target));
            ("k", J.Num (float_of_int k));
            ("reliability", J.Num reliability);
            ("r_star", J.Num r_star) ])
      st.pending_rows
  in
  st.pending_rows <- [];
  st.learned_log <- st.learned_log @ tagged;
  let metrics = Archex_obs.Ctx.metrics st.obs in
  if Archex_obs.Metrics.enabled metrics then begin
    Archex_obs.Metrics.add
      (Archex_obs.Metrics.counter metrics "mr.constraints_learned")
      (float_of_int !added);
    Archex_obs.Metrics.set
      (Archex_obs.Metrics.gauge metrics "mr.estpath_k")
      (float_of_int k)
  end;
  if !added = 0 then Saturated else Learned { k; new_constraints = !added }

let drain_learned st =
  let l = st.learned_log in
  st.learned_log <- [];
  l

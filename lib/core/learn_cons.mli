(** [LEARNCONS] (Algorithm 2): turn a failed reliability analysis into new
    interconnection constraints.

    [ESTPATH] estimates how many additional redundant paths [k] are needed
    ([k = ⌊log(r*/r)/log ρ⌋], ρ the failure probability of a single path —
    a conservative estimate since real paths are not independent).
    [ADDPATH] then enforces, per sink and component type, at least [k] more
    components of the type with a path to the sink, through linearized
    walk-indicator constraints (Eq. 6 / Lemma 1).  [FINDMINREDTYPE] picks
    the least-redundant type when [k = 0].

    The state memoizes the walk-indicator variables so repeated iterations
    share the encoding, and remembers enforced targets so a run can detect
    saturation ([UNFEASIBLE]: no further path can be added). *)

type state

val init : ?obs:Archex_obs.Ctx.t -> Gen_ilp.t -> state
(** Attach to an encoding.  Constraints learned later are added to the
    encoding's model.  [obs] (default disabled) wraps each {!learn} call in
    a ["learn"] span, accumulates [mr.constraints_learned] and tracks the
    latest [ESTPATH] estimate in the [mr.estpath_k] gauge. *)

type strategy =
  | Estimated  (** full Algorithm 2, driven by [ESTPATH] *)
  | Lazy_one_path
      (** the Table II baseline: one extra path per sink per iteration,
          towards a minimally redundant type *)

type outcome =
  | Learned of { k : int; new_constraints : int }
  | Saturated  (** nothing left to enforce: ILP-MR must report UNFEASIBLE *)

val learn :
  ?strategy:strategy -> state -> config:Netgraph.Digraph.t ->
  reliability:float -> r_star:float -> outcome

val est_path :
  state -> config:Netgraph.Digraph.t -> reliability:float ->
  r_star:float -> int
(** Exposed for inspection/testing: the [k] of [ESTPATH]. *)

val drain_learned : state -> Archex_obs.Json.t list
(** Provenance of the constraints learned since the last drain, oldest
    first: one JSON object per added row with ["name"], ["role"]
    (["addpath"]/["usecut"]/["edgecut"]), ["sink"], ["type"], ["target"]
    and the analysis context that triggered it (["k"], ["reliability"],
    ["r_star"]).  ILP-MR attaches these to its per-iteration records and
    certificate chain. *)

val reach_var :
  state -> sink:int -> depth:int -> int -> Milp.Model.var option
(** The walk-indicator variable η[w → sink, ≤ depth] over the decision
    variables, building the encoding on first use.  [None] means no such
    walk exists in the candidate graph (constant false).  Also used by the
    ILP-AR encoder. *)

val source_connection_var :
  state -> depth:int -> int -> Milp.Model.var option
(** Indicator "some source reaches [w] by a walk of length ≤ depth" (a
    source itself is [Some] of a variable fixed to 1). *)

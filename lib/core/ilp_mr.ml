module B = Archex_resilience.Budget
module Err = Archex_resilience.Error

type iteration = {
  index : int;
  config : Netgraph.Digraph.t;
  cost : float;
  reliability : float;
  per_sink : (int * float) list;
  k_estimate : int option;
  new_constraints : int;
  solver_time : float;
  analysis_time : float;
  stats : Milp.Solver.run_stats;
  solution : float array;
  cert : (Archex_obs.Json.t, string) result option;
  learned_rows : Archex_obs.Json.t list;
}

type trace = iteration list

let strategy_name = function
  | Learn_cons.Estimated -> "estimated"
  | Learn_cons.Lazy_one_path -> "lazy-one-path"

let strategy_of_name = function
  | "estimated" -> Some Learn_cons.Estimated
  | "lazy-one-path" -> Some Learn_cons.Lazy_one_path
  | _ -> None

let backend_of_name = function
  | "pb" -> Some Milp.Solver.Pseudo_boolean
  | "lp-bb" -> Some Milp.Solver.Lp_branch_bound
  | "brute" -> Some Milp.Solver.Brute_force
  | "portfolio" -> Some Milp.Solver.Portfolio
  | _ -> None

(* Replayed iterations did not re-run the solver; their statistics are
   zero by construction, not unknown. *)
let replay_stats backend =
  { Milp.Solver.backend = Option.value backend ~default:Milp.Solver.Pseudo_boolean;
    nodes = 0;
    propagations = 0;
    conflicts = 0;
    pivots = 0;
    presolve_fixed = 0;
    presolve_dropped = 0;
    elapsed = 0.;
    best_bound = None;
    retries = 0 }

let checkpoint_iteration it =
  { Checkpoint.index = it.index;
    solution = it.solution;
    edges = Netgraph.Digraph.edges it.config;
    cost = it.cost;
    reliability = it.reliability;
    per_sink = it.per_sink;
    k_estimate = it.k_estimate;
    new_constraints = it.new_constraints }

let run_with_encoding ?(obs = Archex_obs.Ctx.null) ?on_event ?strategy
    ?backend ?engine ?(max_iterations = 50) ?(solve_time_limit = 180.)
    ?(certify = false) ?cert_node_budget ?(budget = B.unlimited) ?checkpoint
    ?resume_from ?(jobs = 1) template ~r_star =
  let tracer = Archex_obs.Ctx.trace obs in
  let metrics = Archex_obs.Ctx.metrics obs in
  let root_attrs =
    if Archex_obs.Trace.enabled tracer then
      [ ("r_star", Archex_obs.Json.Num r_star) ]
    else []
  in
  let t_run = Archex_obs.Clock.now () in
  let t0 = Archex_obs.Clock.now () in
  let enc = Gen_ilp.encode ~obs template in
  let result =
    Archex_obs.Trace.with_span ~attrs:root_attrs tracer "ilp_mr" @@ fun () ->
    let setup_time = Archex_obs.Clock.now () -. t0 in
    let learn_state = Learn_cons.init ~obs enc in
    let solver_total = ref 0. in
    let analysis_total = ref 0. in
    let trace = ref [] in
    let ckpt_rev = ref [] in
    (* cost of the last solved relaxation: each iteration's model is a
       relaxation of every later one, so its optimum is a valid global
       lower bound to report on budget exhaustion *)
    let last_cost = ref None in
    let timing () =
      { Synthesis.setup_time;
        solver_time = !solver_total;
        analysis_time = !analysis_total }
    in
    let save_checkpoint () =
      match checkpoint with
      | None -> ()
      | Some path -> (
          let ck =
            { Checkpoint.r_star;
              strategy = Option.map strategy_name strategy;
              backend = Option.map Milp.Solver.backend_name backend;
              iterations = List.rev !ckpt_rev }
          in
          match Checkpoint.save path ck with
          | Ok () -> ()
          | Error msg ->
              Logs.warn (fun m -> m "Ilp_mr: checkpoint not saved: %s" msg))
    in
    let emit_iteration it =
      match on_event with
      | None -> ()
      | Some f ->
          f
            { Archex_obs.Event.source = "ilp-mr";
              kind = Archex_obs.Event.Iteration;
              elapsed = Archex_obs.Clock.now () -. t_run;
              data =
                [ ("iteration", float_of_int it.index);
                  ("cost", it.cost);
                  ("reliability", it.reliability);
                  ("new_constraints", float_of_int it.new_constraints);
                  ("solver_time", it.solver_time);
                  ("analysis_time", it.analysis_time);
                  ("nodes", float_of_int it.stats.Milp.Solver.nodes);
                  ("conflicts", float_of_int it.stats.Milp.Solver.conflicts)
                ]
            }
    in
    let push it =
      trace := it :: !trace;
      ckpt_rev := checkpoint_iteration it :: !ckpt_rev;
      last_cost := Some it.cost;
      emit_iteration it;
      save_checkpoint ()
    in
    let exhausted error =
      Synthesis.Unfeasible
        ( Synthesis.Budget_exhausted
            { error; incumbent = None; bound = !last_cost },
          List.rev !trace,
          timing () )
    in
    (* Deterministic replay of a previous run's prefix: re-certify against
       the model exactly as that iteration solved it, then re-run the
       learning call (deterministic in the recorded analysis figures) so
       the model grows back to its checkpointed shape. *)
    let replay (ck : Checkpoint.t) =
      List.iter
        (fun (cit : Checkpoint.iteration) ->
          Archex_obs.Trace.with_span
            ~attrs:
              (if Archex_obs.Trace.enabled tracer then
                 [ ("index", Archex_obs.Json.Num (float_of_int cit.index));
                   ("replayed", Archex_obs.Json.Bool true) ]
               else [])
            tracer "iteration"
          @@ fun () ->
          let config =
            Archlib.Template.config_of_edges template cit.Checkpoint.edges
          in
          let cert =
            if certify then
              Some
                (Archex_obs.Trace.with_span tracer "certify" @@ fun () ->
                 Archex_cert.certify ?node_budget:cert_node_budget
                   (Gen_ilp.model enc)
                   ~incumbent:(Some (cit.cost, cit.solution)))
            else None
          in
          (match cit.k_estimate with
          | None -> ()
          | Some _ -> (
              match
                Learn_cons.learn ?strategy learn_state ~config
                  ~reliability:cit.reliability ~r_star
              with
              | Learn_cons.Learned _ -> ()
              | Learn_cons.Saturated ->
                  raise
                    (Err.E
                       (Err.Internal
                          { stage = "ilp-mr.resume";
                            detail =
                              Printf.sprintf
                                "replay diverged at iteration %d: learning \
                                 saturated where the original run learned \
                                 (checkpoint does not match this template)"
                                cit.index }))));
          push
            { index = cit.index;
              config;
              cost = cit.cost;
              reliability = cit.reliability;
              per_sink = cit.per_sink;
              k_estimate = cit.k_estimate;
              new_constraints = cit.new_constraints;
              solver_time = 0.;
              analysis_time = 0.;
              stats = replay_stats backend;
              solution = cit.solution;
              cert;
              learned_rows = Learn_cons.drain_learned learn_state })
        ck.Checkpoint.iterations;
      List.length ck.Checkpoint.iterations
    in
    let replayed =
      match resume_from with None -> 0 | Some ck -> replay ck
    in
    (* One iteration of the Algorithm 1 loop, wrapped in its own span; the
       tail call happens outside the span so iteration n+1 is a sibling of
       iteration n, not its child. *)
    let step index =
      let attrs =
        if Archex_obs.Trace.enabled tracer then
          [ ("index", Archex_obs.Json.Num (float_of_int index)) ]
        else []
      in
      Archex_obs.Trace.with_span ~attrs tracer "iteration" @@ fun () ->
      Archex_obs.Metrics.incr
        (Archex_obs.Metrics.counter metrics "mr.iterations");
      match B.check ~stage:"ilp-mr" budget with
      | Error e -> `Done (exhausted e)
      | Ok () -> (
          match
            Gen_ilp.solve_checked ~obs ?on_event ?backend
              ?time_limit:(B.slice ~cap:solve_time_limit budget) ~budget enc
          with
          | Gen_ilp.No_solution { stats } ->
              solver_total := !solver_total +. stats.Milp.Solver.elapsed;
              `Done
                (Synthesis.Unfeasible
                   (Synthesis.Proved_infeasible, List.rev !trace, timing ()))
          | Gen_ilp.Exhausted { error; stats } ->
              solver_total := !solver_total +. stats.Milp.Solver.elapsed;
              let bound =
                match (stats.Milp.Solver.best_bound, !last_cost) with
                | Some b, Some c -> Some (Float.max b c)
                | (Some _ as b), None -> b
                | None, b -> b
              in
              `Done
                (Synthesis.Unfeasible
                   ( Synthesis.Budget_exhausted
                       { error; incumbent = None; bound },
                     List.rev !trace,
                     timing () ))
          | Gen_ilp.Solved { solution; config; objective = cost; stats } ->
              solver_total := !solver_total +. stats.Milp.Solver.elapsed;
              (* certification must look at the model as solved, i.e. before
                 Learn_cons extends it below *)
              let cert =
                if certify then
                  Some
                    (Archex_obs.Trace.with_span tracer "certify" @@ fun () ->
                     Archex_cert.certify ?node_budget:cert_node_budget
                       (Gen_ilp.model enc)
                       ~incumbent:(Some (cost, solution)))
                else None
              in
              let report =
                Rel_analysis.analyze ~obs ?on_event ?engine ~budget ~jobs
                  template config
              in
              analysis_total := !analysis_total +. report.Rel_analysis.elapsed;
              let reliability = report.Rel_analysis.worst in
              Archex_obs.Gc_metrics.sample metrics;
              let record ~k_estimate ~new_constraints =
                push
                  { index;
                    config;
                    cost;
                    reliability;
                    per_sink = report.Rel_analysis.per_sink;
                    k_estimate;
                    new_constraints;
                    solver_time = stats.Milp.Solver.elapsed;
                    analysis_time = report.Rel_analysis.elapsed;
                    stats;
                    solution;
                    cert;
                    learned_rows = Learn_cons.drain_learned learn_state }
              in
              if Rel_analysis.meets report ~r_star then begin
                record ~k_estimate:None ~new_constraints:0;
                `Done
                  (Synthesis.Synthesized
                     ( Synthesis.architecture template config report,
                       List.rev !trace,
                       timing () ))
              end
              else begin
                match
                  Learn_cons.learn ?strategy learn_state ~config ~reliability
                    ~r_star
                with
                | Learn_cons.Saturated ->
                    record ~k_estimate:None ~new_constraints:0;
                    `Done
                      (Synthesis.Unfeasible
                         (Synthesis.Saturated, List.rev !trace, timing ()))
                | Learn_cons.Learned { k; new_constraints } ->
                    record ~k_estimate:(Some k) ~new_constraints;
                    `Continue
              end)
    in
    let rec iterate index =
      if index > max_iterations then
        Synthesis.Unfeasible
          (Synthesis.Iteration_limit max_iterations, List.rev !trace,
           timing ())
      else
        match step index with
        | `Done result -> result
        | `Continue -> iterate (index + 1)
    in
    iterate (replayed + 1)
  in
  (enc, result)

let run ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint
    ?resume_from ?jobs template ~r_star =
  snd
    (run_with_encoding ?obs ?on_event ?strategy ?backend ?engine
       ?max_iterations ?solve_time_limit ?certify ?cert_node_budget ?budget
       ?checkpoint ?resume_from ?jobs template ~r_star)

let resume ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint ?jobs
    template ~from =
  let strategy =
    match strategy with
    | Some _ -> strategy
    | None -> Option.bind from.Checkpoint.strategy strategy_of_name
  in
  let backend =
    match backend with
    | Some _ -> backend
    | None -> Option.bind from.Checkpoint.backend backend_of_name
  in
  run ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint ?jobs
    ~resume_from:from template ~r_star:from.Checkpoint.r_star

let run_checked ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint
    ?resume_from ?jobs template ~r_star =
  match Archlib.Template.validate_all template with
  | Error violations -> Error (Err.Invalid_input violations)
  | Ok () ->
      Err.guard ~stage:"ilp-mr" (fun () ->
          run ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
            ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint
            ?resume_from ?jobs template ~r_star)

let certificate_of_trace ~r_star trace =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | it :: rest -> (
        match it.cert with
        | None ->
            Error
              (Printf.sprintf "iteration %d was run without certification"
                 it.index)
        | Some (Error e) ->
            Error
              (Printf.sprintf "iteration %d failed to certify: %s" it.index e)
        | Some (Ok c) -> collect ((c, it.learned_rows) :: acc) rest)
  in
  match trace with
  | [] -> Error "empty trace: nothing to certify"
  | _ -> (
      match collect [] trace with
      | Error _ as e -> e
      | Ok iterations ->
          let final_objective =
            match List.rev trace with it :: _ -> Some it.cost | [] -> None
          in
          Ok (Archex_cert.chain ~r_star ~iterations ~final_objective))

module B = Archex_resilience.Budget
module Err = Archex_resilience.Error

type iteration = {
  index : int;
  config : Netgraph.Digraph.t;
  cost : float;
  reliability : float;
  per_sink : (int * float) list;
  k_estimate : int option;
  new_constraints : int;
  solver_time : float;
  analysis_time : float;
  stats : Milp.Solver.run_stats;
  solution : float array;
  cert : (Archex_obs.Json.t, string) result option;
  learned_rows : Archex_obs.Json.t list;
  insight : Archex_obs.Json.t option;
}

type trace = iteration list

let strategy_name = function
  | Learn_cons.Estimated -> "estimated"
  | Learn_cons.Lazy_one_path -> "lazy-one-path"

let strategy_of_name = function
  | "estimated" -> Some Learn_cons.Estimated
  | "lazy-one-path" -> Some Learn_cons.Lazy_one_path
  | _ -> None

let backend_of_name = function
  | "pb" -> Some Milp.Solver.Pseudo_boolean
  | "lp-bb" -> Some Milp.Solver.Lp_branch_bound
  | "brute" -> Some Milp.Solver.Brute_force
  | "core-guided" -> Some Milp.Solver.Core_guided
  | "portfolio" -> Some Milp.Solver.Portfolio
  | _ -> None

(* Replayed iterations did not re-run the solver; their statistics are
   zero by construction, not unknown. *)
let replay_stats backend =
  { Milp.Solver.backend = Option.value backend ~default:Milp.Solver.Pseudo_boolean;
    nodes = 0;
    propagations = 0;
    conflicts = 0;
    pivots = 0;
    presolve_fixed = 0;
    presolve_dropped = 0;
    elapsed = 0.;
    best_bound = None;
    retries = 0 }

let checkpoint_iteration it =
  { Checkpoint.index = it.index;
    solution = it.solution;
    edges = Netgraph.Digraph.edges it.config;
    cost = it.cost;
    reliability = it.reliability;
    per_sink = it.per_sink;
    k_estimate = it.k_estimate;
    new_constraints = it.new_constraints }

(* ------------------------------------------------------------------ *)
(* Search-effectiveness inspection (the [?inspect] mode)

   Every model row gets a stable id — its insertion index, which only ever
   grows because Learn_cons appends — and a birth iteration (0 for the base
   encoding, i for rows learned by iteration i's analysis).  Per iteration
   the solver fills a {!Milp.Row_stats} activity table, the first decisions
   of the search log are captured, and the result is distilled into one
   JSON [insight] record per iteration: row activity with names and birth,
   the cross-iteration redundancy ratio (rows carried over / rows total),
   the decision-prefix overlap with the previous solve, and the running
   warm-start-potential score (the mean of the two signals). *)

module J = Archex_obs.Json

(* Birth iteration of a row id from the learn breakpoints, a
   (first_row, iteration) list newest-first: rows below every breakpoint
   belong to the base encoding (iteration 0). *)
let born_of breakpoints id =
  let rec find = function
    | (first, it) :: rest -> if id >= first then it else find rest
    | [] -> 0
  in
  find breakpoints

let row_kind ~born name =
  if born > 0 then "learned"
  else
    match name with
    | Some n when String.length n >= 3 && String.sub n 0 3 = "req" ->
        "requirement"
    | _ -> "template"

(* Longest-common-prefix overlap of two captured decision sequences,
   in [0,1].  Two decision-free solves are identical by definition. *)
let prefix_overlap a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 && lb = 0 then 1.
  else if la = 0 || lb = 0 then 0.
  else begin
    let n = min la lb in
    let i = ref 0 in
    while !i < n && a.(!i) = b.(!i) do incr i done;
    float_of_int !i /. float_of_int n
  end

(* Decisions captured per solve: enough for prefix comparison, bounded so
   inspection never retains a full search log. *)
let decision_capture_limit = 512

let run_with_encoding ?(obs = Archex_obs.Ctx.null) ?on_event ?strategy
    ?backend ?engine ?(max_iterations = 50) ?(solve_time_limit = 180.)
    ?(certify = false) ?cert_node_budget ?(budget = B.unlimited) ?checkpoint
    ?resume_from ?(jobs = 1) ?(inspect = false) ?(incremental = false)
    template ~r_star =
  let tracer = Archex_obs.Ctx.trace obs in
  let metrics = Archex_obs.Ctx.metrics obs in
  let root_attrs =
    if Archex_obs.Trace.enabled tracer then
      [ ("r_star", Archex_obs.Json.Num r_star) ]
    else []
  in
  let t_run = Archex_obs.Clock.now () in
  let t0 = Archex_obs.Clock.now () in
  let enc = Gen_ilp.encode ~obs template in
  let result =
    Archex_obs.Trace.with_span ~attrs:root_attrs tracer "ilp_mr" @@ fun () ->
    let setup_time = Archex_obs.Clock.now () -. t0 in
    let learn_state = Learn_cons.init ~obs enc in
    (* incremental mode: one persistent solver session over the growing
       model — Learn_cons appends rows to [Gen_ilp.model enc] and the next
       solve ingests them, resuming from the carried clause database.
       [prev_bound] carries each iteration's proven objective lower bound
       forward: the model only gains rows, so the optimum is monotone. *)
    let session =
      if incremental then Some (Milp.Solver.make_session (Gen_ilp.model enc))
      else None
    in
    let prev_bound = ref None in
    let solver_total = ref 0. in
    let analysis_total = ref 0. in
    (* inspection state: learn breakpoints (row births), the previous
       iteration's row count and decision prefix, and the running
       redundancy / overlap means behind the warm-start-potential score *)
    let breakpoints = ref [] in
    let prev_rows = ref None in
    let prev_decisions = ref None in
    let red_sum = ref 0. and red_n = ref 0 in
    let ov_sum = ref 0. and ov_n = ref 0 in
    let note_learned ~index ~rows_before_learn =
      if
        Milp.Model.constraint_count (Gen_ilp.model enc) > rows_before_learn
      then breakpoints := (rows_before_learn, index) :: !breakpoints
    in
    let trace = ref [] in
    let ckpt_rev = ref [] in
    (* cost of the last solved relaxation: each iteration's model is a
       relaxation of every later one, so its optimum is a valid global
       lower bound to report on budget exhaustion *)
    let last_cost = ref None in
    let timing () =
      { Synthesis.setup_time;
        solver_time = !solver_total;
        analysis_time = !analysis_total }
    in
    let save_checkpoint () =
      match checkpoint with
      | None -> ()
      | Some path -> (
          let ck =
            { Checkpoint.r_star;
              strategy = Option.map strategy_name strategy;
              backend = Option.map Milp.Solver.backend_name backend;
              iterations = List.rev !ckpt_rev }
          in
          match Checkpoint.save path ck with
          | Ok () -> ()
          | Error msg ->
              Logs.warn (fun m -> m "Ilp_mr: checkpoint not saved: %s" msg))
    in
    let emit_iteration it =
      match on_event with
      | None -> ()
      | Some f ->
          f
            { Archex_obs.Event.source = "ilp-mr";
              kind = Archex_obs.Event.Iteration;
              elapsed = Archex_obs.Clock.now () -. t_run;
              data =
                [ ("iteration", float_of_int it.index);
                  ("cost", it.cost);
                  ("reliability", it.reliability);
                  ("new_constraints", float_of_int it.new_constraints);
                  ("solver_time", it.solver_time);
                  ("analysis_time", it.analysis_time);
                  ("nodes", float_of_int it.stats.Milp.Solver.nodes);
                  ("conflicts", float_of_int it.stats.Milp.Solver.conflicts)
                ]
            }
    in
    let push it =
      trace := it :: !trace;
      ckpt_rev := checkpoint_iteration it :: !ckpt_rev;
      last_cost := Some it.cost;
      emit_iteration it;
      save_checkpoint ()
    in
    let exhausted error =
      Synthesis.Unfeasible
        ( Synthesis.Budget_exhausted
            { error; incumbent = None; bound = !last_cost },
          List.rev !trace,
          timing () )
    in
    (* Deterministic replay of a previous run's prefix: re-certify against
       the model exactly as that iteration solved it, then re-run the
       learning call (deterministic in the recorded analysis figures) so
       the model grows back to its checkpointed shape. *)
    let replay (ck : Checkpoint.t) =
      List.iter
        (fun (cit : Checkpoint.iteration) ->
          Archex_obs.Trace.with_span
            ~attrs:
              (if Archex_obs.Trace.enabled tracer then
                 [ ("index", Archex_obs.Json.Num (float_of_int cit.index));
                   ("replayed", Archex_obs.Json.Bool true) ]
               else [])
            tracer "iteration"
          @@ fun () ->
          let config =
            Archlib.Template.config_of_edges template cit.Checkpoint.edges
          in
          let cert =
            if certify then
              Some
                (Archex_obs.Trace.with_span tracer "certify" @@ fun () ->
                 Archex_cert.certify ?node_budget:cert_node_budget
                   (Gen_ilp.model enc)
                   ~incumbent:(Some (cit.cost, cit.solution)))
            else None
          in
          let rows_before_learn =
            Milp.Model.constraint_count (Gen_ilp.model enc)
          in
          (match cit.k_estimate with
          | None -> ()
          | Some _ -> (
              match
                Learn_cons.learn ?strategy learn_state ~config
                  ~reliability:cit.reliability ~r_star
              with
              | Learn_cons.Learned _ -> ()
              | Learn_cons.Saturated ->
                  raise
                    (Err.E
                       (Err.Internal
                          { stage = "ilp-mr.resume";
                            detail =
                              Printf.sprintf
                                "replay diverged at iteration %d: learning \
                                 saturated where the original run learned \
                                 (checkpoint does not match this template)"
                                cit.index }))));
          note_learned ~index:cit.index ~rows_before_learn;
          push
            { index = cit.index;
              config;
              cost = cit.cost;
              reliability = cit.reliability;
              per_sink = cit.per_sink;
              k_estimate = cit.k_estimate;
              new_constraints = cit.new_constraints;
              solver_time = 0.;
              analysis_time = 0.;
              stats = replay_stats backend;
              solution = cit.solution;
              cert;
              learned_rows = Learn_cons.drain_learned learn_state;
              insight = None })
        ck.Checkpoint.iterations;
      List.length ck.Checkpoint.iterations
    in
    let replayed =
      match resume_from with None -> 0 | Some ck -> replay ck
    in
    (* One iteration of the Algorithm 1 loop, wrapped in its own span; the
       tail call happens outside the span so iteration n+1 is a sibling of
       iteration n, not its child. *)
    let step index =
      let attrs =
        if Archex_obs.Trace.enabled tracer then
          [ ("index", Archex_obs.Json.Num (float_of_int index)) ]
        else []
      in
      Archex_obs.Trace.with_span ~attrs tracer "iteration" @@ fun () ->
      Archex_obs.Metrics.incr
        (Archex_obs.Metrics.counter metrics "mr.iterations");
      match B.check ~stage:"ilp-mr" budget with
      | Error e -> `Done (exhausted e)
      | Ok () -> (
          (* inspection plumbing for this solve: a fresh per-row activity
             table and a search-log shim capturing the first decisions of
             the search (forwarding to the user's sink, if any) *)
          let rows_total =
            Milp.Model.constraint_count (Gen_ilp.model enc)
          in
          let row_stats =
            if inspect then Some (Milp.Row_stats.create ()) else None
          in
          let captured = ref [] in
          let ncaptured = ref 0 in
          let solve_obs =
            if not inspect then obs
            else begin
              let user_sink = Archex_obs.Ctx.search_log obs in
              let sink j =
                (match j with
                | J.Obj fields
                  when !ncaptured < decision_capture_limit
                       && List.assoc_opt "ev" fields
                          = Some (J.Str "decision") -> (
                    match
                      ( List.assoc_opt "var" fields,
                        List.assoc_opt "value" fields )
                    with
                    | Some (J.Num v), Some (J.Num value) ->
                        captured := (v, value) :: !captured;
                        incr ncaptured
                    | _ -> ())
                | _ -> ());
                match user_sink with Some f -> f j | None -> ()
              in
              Archex_obs.Ctx.make
                ~trace:(Archex_obs.Ctx.trace obs)
                ~metrics ~search_log:sink ()
            end
          in
          match
            Gen_ilp.solve_checked ~obs:solve_obs ?on_event ?backend
              ?rows:row_stats
              ?time_limit:(B.slice ~cap:solve_time_limit budget) ~budget
              ?session ?lower_bound:!prev_bound enc
          with
          | Gen_ilp.No_solution { stats } ->
              solver_total := !solver_total +. stats.Milp.Solver.elapsed;
              `Done
                (Synthesis.Unfeasible
                   (Synthesis.Proved_infeasible, List.rev !trace, timing ()))
          | Gen_ilp.Exhausted { error; stats } ->
              solver_total := !solver_total +. stats.Milp.Solver.elapsed;
              let bound =
                match (stats.Milp.Solver.best_bound, !last_cost) with
                | Some b, Some c -> Some (Float.max b c)
                | (Some _ as b), None -> b
                | None, b -> b
              in
              `Done
                (Synthesis.Unfeasible
                   ( Synthesis.Budget_exhausted
                       { error; incumbent = None; bound },
                     List.rev !trace,
                     timing () ))
          | Gen_ilp.Solved { solution; config; objective = cost; stats } ->
              solver_total := !solver_total +. stats.Milp.Solver.elapsed;
              (* the bound proved for this (weaker) model stays valid for
                 every later one — seed the next solve with it.  Session
                 mode only: the session installs it as a permanent
                 objective floor, whereas a scratch solve would spend its
                 probe refuting a bound the learned rows just outgrew. *)
              (if session <> None then
                 match stats.Milp.Solver.best_bound with
                 | Some b ->
                     prev_bound :=
                       Some
                         (match !prev_bound with
                         | Some p -> Float.max p b
                         | None -> b)
                 | None -> ());
              (* certification must look at the model as solved, i.e. before
                 Learn_cons extends it below *)
              let cert =
                if certify then
                  Some
                    (Archex_obs.Trace.with_span tracer "certify" @@ fun () ->
                     Archex_cert.certify ?node_budget:cert_node_budget
                       (Gen_ilp.model enc)
                       ~incumbent:(Some (cost, solution)))
                else None
              in
              (* stamp incremental provenance into the iteration certificate:
                 how many learned rows the session carried into this solve
                 and which solve of the session produced the incumbent.
                 [Archex_cert.check]/[check_chain] look fields up by key and
                 ignore extras, so stamped certificates stay verifiable. *)
              let cert =
                match (cert, session) with
                | Some (Ok (J.Obj fields)), Some s ->
                    Some
                      (Ok
                         (J.Obj
                            (fields
                            @ [ ( "session",
                                  J.Obj
                                    [ ( "carried_learned",
                                        J.Num
                                          (float_of_int
                                             (Milp.Solver
                                              .session_carried_learned s)) );
                                      ( "solve_index",
                                        J.Num
                                          (float_of_int
                                             (Milp.Solver.session_solves s))
                                      ) ] ) ])))
                | _ -> cert
              in
              let report =
                Rel_analysis.analyze ~obs ?on_event ?engine ~budget ~jobs
                  template config
              in
              analysis_total := !analysis_total +. report.Rel_analysis.elapsed;
              let reliability = report.Rel_analysis.worst in
              Archex_obs.Gc_metrics.sample metrics;
              (* distill the iteration's search-effectiveness signals into
                 one JSON record (see the inspection comment above); also
                 updates the running redundancy/overlap means and the
                 [mr.redundancy_ratio] / [mr.warm_start_potential] gauges *)
              let build_insight () =
                let rs =
                  match row_stats with
                  | Some rs -> rs
                  | None -> Milp.Row_stats.create ()
                in
                let names =
                  Array.of_list
                    (List.map
                       (fun r -> r.Milp.Model.cname)
                       (Milp.Model.constraints (Gen_ilp.model enc)))
                in
                let cname id =
                  if id < Array.length names then names.(id) else None
                in
                let bps = !breakpoints in
                let activity = ref [] in
                (* indices ≥ rows_total belong to solver-side extras (the
                   PB probe's bound row): not rows of this model, skipped *)
                for id = min rows_total (Milp.Row_stats.rows rs) - 1
                    downto 0 do
                  if Milp.Row_stats.activity rs id > 0 then begin
                    let born = born_of bps id in
                    let name =
                      match cname id with
                      | Some n -> n
                      | None -> Printf.sprintf "row%d" id
                    in
                    activity :=
                      J.Obj
                        [ ("row", J.Num (float_of_int id));
                          ("name", J.Str name);
                          ("kind", J.Str (row_kind ~born (cname id)));
                          ("born", J.Num (float_of_int born));
                          ( "props",
                            J.Num
                              (float_of_int
                                 (Milp.Row_stats.propagations rs id)) );
                          ( "conflicts",
                            J.Num
                              (float_of_int (Milp.Row_stats.conflicts rs id))
                          );
                          ( "binding",
                            J.Num
                              (float_of_int (Milp.Row_stats.binding rs id))
                          );
                          ( "prunes",
                            J.Num
                              (float_of_int (Milp.Row_stats.prunes rs id)) )
                        ]
                      :: !activity
                  end
                done;
                let decisions = Array.of_list (List.rev !captured) in
                let carried = !prev_rows in
                let redundancy =
                  match carried with
                  | Some p when rows_total > 0 ->
                      Some (float_of_int p /. float_of_int rows_total)
                  | _ -> None
                in
                let overlap =
                  Option.map
                    (fun p -> prefix_overlap p decisions)
                    !prev_decisions
                in
                (match redundancy with
                | Some r ->
                    red_sum := !red_sum +. r;
                    incr red_n
                | None -> ());
                (match overlap with
                | Some o ->
                    ov_sum := !ov_sum +. o;
                    incr ov_n
                | None -> ());
                let mean s n = s /. float_of_int n in
                let warm_start =
                  match (!red_n, !ov_n) with
                  | 0, 0 -> None
                  | rn, 0 -> Some (mean !red_sum rn)
                  | 0, on -> Some (mean !ov_sum on)
                  | rn, on ->
                      Some
                        ((0.5 *. mean !red_sum rn)
                        +. (0.5 *. mean !ov_sum on))
                in
                (match redundancy with
                | Some r ->
                    Archex_obs.Metrics.set
                      (Archex_obs.Metrics.gauge metrics
                         "mr.redundancy_ratio")
                      r
                | None -> ());
                (match warm_start with
                | Some w ->
                    Archex_obs.Metrics.set
                      (Archex_obs.Metrics.gauge metrics
                         "mr.warm_start_potential")
                      w
                | None -> ());
                prev_rows := Some rows_total;
                prev_decisions := Some decisions;
                let opt = function Some v -> J.Num v | None -> J.Null in
                let rows_after =
                  Milp.Model.constraint_count (Gen_ilp.model enc)
                in
                J.Obj
                  [ ("iteration", J.Num (float_of_int index));
                    ("rows_total", J.Num (float_of_int rows_total));
                    ( "rows_carried",
                      opt (Option.map float_of_int carried) );
                    ( "rows_learned",
                      J.Num (float_of_int (rows_after - rows_total)) );
                    ("redundancy_ratio", opt redundancy);
                    ( "decisions_captured",
                      J.Num (float_of_int (Array.length decisions)) );
                    ("prefix_overlap", opt overlap);
                    ("warm_start_potential", opt warm_start);
                    ("activity", J.Arr !activity);
                    ( "learned_names",
                      (* names of the rows this iteration's analysis
                         appended, in id order from [rows_total]: lets a
                         reader enumerate every learned row, active or
                         dead *)
                      J.Arr
                        (List.init (rows_after - rows_total) (fun i ->
                             let id = rows_total + i in
                             match cname id with
                             | Some n -> J.Str n
                             | None -> J.Str (Printf.sprintf "row%d" id)))
                    ) ]
              in
              let record ~k_estimate ~new_constraints =
                let insight =
                  if inspect then Some (build_insight ()) else None
                in
                push
                  { index;
                    config;
                    cost;
                    reliability;
                    per_sink = report.Rel_analysis.per_sink;
                    k_estimate;
                    new_constraints;
                    solver_time = stats.Milp.Solver.elapsed;
                    analysis_time = report.Rel_analysis.elapsed;
                    stats;
                    solution;
                    cert;
                    learned_rows = Learn_cons.drain_learned learn_state;
                    insight }
              in
              if Rel_analysis.meets report ~r_star then begin
                record ~k_estimate:None ~new_constraints:0;
                `Done
                  (Synthesis.Synthesized
                     ( Synthesis.architecture template config report,
                       List.rev !trace,
                       timing () ))
              end
              else begin
                match
                  Learn_cons.learn ?strategy learn_state ~config ~reliability
                    ~r_star
                with
                | Learn_cons.Saturated ->
                    record ~k_estimate:None ~new_constraints:0;
                    `Done
                      (Synthesis.Unfeasible
                         (Synthesis.Saturated, List.rev !trace, timing ()))
                | Learn_cons.Learned { k; new_constraints } ->
                    note_learned ~index ~rows_before_learn:rows_total;
                    record ~k_estimate:(Some k) ~new_constraints;
                    `Continue
              end)
    in
    let rec iterate index =
      if index > max_iterations then
        Synthesis.Unfeasible
          (Synthesis.Iteration_limit max_iterations, List.rev !trace,
           timing ())
      else
        match step index with
        | `Done result -> result
        | `Continue -> iterate (index + 1)
    in
    iterate (replayed + 1)
  in
  (enc, result)

let run ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint
    ?resume_from ?jobs ?inspect ?incremental template ~r_star =
  snd
    (run_with_encoding ?obs ?on_event ?strategy ?backend ?engine
       ?max_iterations ?solve_time_limit ?certify ?cert_node_budget ?budget
       ?checkpoint ?resume_from ?jobs ?inspect ?incremental template ~r_star)

let resume ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint ?jobs
    ?inspect ?incremental template ~from =
  let strategy =
    match strategy with
    | Some _ -> strategy
    | None -> Option.bind from.Checkpoint.strategy strategy_of_name
  in
  let backend =
    match backend with
    | Some _ -> backend
    | None -> Option.bind from.Checkpoint.backend backend_of_name
  in
  run ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint ?jobs
    ?inspect ?incremental ~resume_from:from template
    ~r_star:from.Checkpoint.r_star

let run_checked ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint
    ?resume_from ?jobs ?inspect ?incremental template ~r_star =
  match Archlib.Template.validate_all template with
  | Error violations -> Error (Err.Invalid_input violations)
  | Ok () ->
      Err.guard ~stage:"ilp-mr" (fun () ->
          run ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
            ?solve_time_limit ?certify ?cert_node_budget ?budget ?checkpoint
            ?resume_from ?jobs ?inspect ?incremental template ~r_star)

let certificate_of_trace ~r_star trace =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | it :: rest -> (
        match it.cert with
        | None ->
            Error
              (Printf.sprintf "iteration %d was run without certification"
                 it.index)
        | Some (Error e) ->
            Error
              (Printf.sprintf "iteration %d failed to certify: %s" it.index e)
        | Some (Ok c) -> collect ((c, it.learned_rows) :: acc) rest)
  in
  match trace with
  | [] -> Error "empty trace: nothing to certify"
  | _ -> (
      match collect [] trace with
      | Error _ as e -> e
      | Ok iterations ->
          let final_objective =
            match List.rev trace with it :: _ -> Some it.cost | [] -> None
          in
          Ok (Archex_cert.chain ~r_star ~iterations ~final_objective))

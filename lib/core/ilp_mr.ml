type iteration = {
  index : int;
  config : Netgraph.Digraph.t;
  cost : float;
  reliability : float;
  per_sink : (int * float) list;
  k_estimate : int option;
  new_constraints : int;
  solver_time : float;
  analysis_time : float;
}

type trace = iteration list

let run ?strategy ?backend ?engine ?(max_iterations = 50)
    ?(solve_time_limit = 180.) template ~r_star =
  let t0 = Sys.time () in
  let enc = Gen_ilp.encode template in
  let setup_time = Sys.time () -. t0 in
  let learn_state = Learn_cons.init enc in
  let solver_total = ref 0. in
  let analysis_total = ref 0. in
  let trace = ref [] in
  let timing () =
    { Synthesis.setup_time;
      solver_time = !solver_total;
      analysis_time = !analysis_total }
  in
  let rec iterate index =
    if index > max_iterations then Synthesis.Unfeasible (List.rev !trace,
                                                         timing ())
    else
      match Gen_ilp.solve ?backend ~time_limit:solve_time_limit enc with
      | None -> Synthesis.Unfeasible (List.rev !trace, timing ())
      | Some (config, cost, stats) ->
          solver_total := !solver_total +. stats.Milp.Solver.elapsed;
          let report = Rel_analysis.analyze ?engine template config in
          analysis_total :=
            !analysis_total +. report.Rel_analysis.elapsed;
          let reliability = report.Rel_analysis.worst in
          let record ~k_estimate ~new_constraints =
            trace :=
              { index;
                config;
                cost;
                reliability;
                per_sink = report.Rel_analysis.per_sink;
                k_estimate;
                new_constraints;
                solver_time = stats.Milp.Solver.elapsed;
                analysis_time = report.Rel_analysis.elapsed }
              :: !trace
          in
          if Rel_analysis.meets report ~r_star then begin
            record ~k_estimate:None ~new_constraints:0;
            Synthesis.Synthesized
              ( Synthesis.architecture template config report,
                List.rev !trace,
                timing () )
          end
          else begin
            match
              Learn_cons.learn ?strategy learn_state ~config ~reliability
                ~r_star
            with
            | Learn_cons.Saturated ->
                record ~k_estimate:None ~new_constraints:0;
                Synthesis.Unfeasible (List.rev !trace, timing ())
            | Learn_cons.Learned { k; new_constraints } ->
                record ~k_estimate:(Some k) ~new_constraints;
                iterate (index + 1)
          end
  in
  iterate 1

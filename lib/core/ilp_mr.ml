type iteration = {
  index : int;
  config : Netgraph.Digraph.t;
  cost : float;
  reliability : float;
  per_sink : (int * float) list;
  k_estimate : int option;
  new_constraints : int;
  solver_time : float;
  analysis_time : float;
  stats : Milp.Solver.run_stats;
  solution : float array;
  cert : (Archex_obs.Json.t, string) result option;
  learned_rows : Archex_obs.Json.t list;
}

type trace = iteration list

let run_with_encoding ?(obs = Archex_obs.Ctx.null) ?on_event ?strategy
    ?backend ?engine ?(max_iterations = 50) ?(solve_time_limit = 180.)
    ?(certify = false) ?cert_node_budget template ~r_star =
  let tracer = Archex_obs.Ctx.trace obs in
  let metrics = Archex_obs.Ctx.metrics obs in
  let root_attrs =
    if Archex_obs.Trace.enabled tracer then
      [ ("r_star", Archex_obs.Json.Num r_star) ]
    else []
  in
  let t_run = Archex_obs.Clock.now () in
  let t0 = Archex_obs.Clock.now () in
  let enc = Gen_ilp.encode ~obs template in
  let result =
    Archex_obs.Trace.with_span ~attrs:root_attrs tracer "ilp_mr" @@ fun () ->
    let setup_time = Archex_obs.Clock.now () -. t0 in
    let learn_state = Learn_cons.init ~obs enc in
    let solver_total = ref 0. in
    let analysis_total = ref 0. in
    let trace = ref [] in
    let timing () =
      { Synthesis.setup_time;
        solver_time = !solver_total;
        analysis_time = !analysis_total }
    in
    let emit_iteration it =
      match on_event with
      | None -> ()
      | Some f ->
          f
            { Archex_obs.Event.source = "ilp-mr";
              kind = Archex_obs.Event.Iteration;
              elapsed = Archex_obs.Clock.now () -. t_run;
              data =
                [ ("iteration", float_of_int it.index);
                  ("cost", it.cost);
                  ("reliability", it.reliability);
                  ("new_constraints", float_of_int it.new_constraints);
                  ("solver_time", it.solver_time);
                  ("analysis_time", it.analysis_time);
                  ("nodes", float_of_int it.stats.Milp.Solver.nodes);
                  ("conflicts", float_of_int it.stats.Milp.Solver.conflicts)
                ]
            }
    in
    (* One iteration of the Algorithm 1 loop, wrapped in its own span; the
       tail call happens outside the span so iteration n+1 is a sibling of
       iteration n, not its child. *)
    let step index =
      let attrs =
        if Archex_obs.Trace.enabled tracer then
          [ ("index", Archex_obs.Json.Num (float_of_int index)) ]
        else []
      in
      Archex_obs.Trace.with_span ~attrs tracer "iteration" @@ fun () ->
      Archex_obs.Metrics.incr
        (Archex_obs.Metrics.counter metrics "mr.iterations");
      match
        Gen_ilp.solve_raw ~obs ?on_event ?backend
          ~time_limit:solve_time_limit enc
      with
      | None -> `Done (Synthesis.Unfeasible (List.rev !trace, timing ()))
      | Some (solution, config, cost, stats) ->
          solver_total := !solver_total +. stats.Milp.Solver.elapsed;
          (* certification must look at the model as solved, i.e. before
             Learn_cons extends it below *)
          let cert =
            if certify then
              Some
                (Archex_obs.Trace.with_span tracer "certify" @@ fun () ->
                 Archex_cert.certify ?node_budget:cert_node_budget
                   (Gen_ilp.model enc)
                   ~incumbent:(Some (cost, solution)))
            else None
          in
          let report = Rel_analysis.analyze ~obs ?engine template config in
          analysis_total := !analysis_total +. report.Rel_analysis.elapsed;
          let reliability = report.Rel_analysis.worst in
          Archex_obs.Gc_metrics.sample metrics;
          let record ~k_estimate ~new_constraints =
            let it =
              { index;
                config;
                cost;
                reliability;
                per_sink = report.Rel_analysis.per_sink;
                k_estimate;
                new_constraints;
                solver_time = stats.Milp.Solver.elapsed;
                analysis_time = report.Rel_analysis.elapsed;
                stats;
                solution;
                cert;
                learned_rows = Learn_cons.drain_learned learn_state }
            in
            trace := it :: !trace;
            emit_iteration it
          in
          if Rel_analysis.meets report ~r_star then begin
            record ~k_estimate:None ~new_constraints:0;
            `Done
              (Synthesis.Synthesized
                 ( Synthesis.architecture template config report,
                   List.rev !trace,
                   timing () ))
          end
          else begin
            match
              Learn_cons.learn ?strategy learn_state ~config ~reliability
                ~r_star
            with
            | Learn_cons.Saturated ->
                record ~k_estimate:None ~new_constraints:0;
                `Done (Synthesis.Unfeasible (List.rev !trace, timing ()))
            | Learn_cons.Learned { k; new_constraints } ->
                record ~k_estimate:(Some k) ~new_constraints;
                `Continue
          end
    in
    let rec iterate index =
      if index > max_iterations then
        Synthesis.Unfeasible (List.rev !trace, timing ())
      else
        match step index with
        | `Done result -> result
        | `Continue -> iterate (index + 1)
    in
    iterate 1
  in
  (enc, result)

let run ?obs ?on_event ?strategy ?backend ?engine ?max_iterations
    ?solve_time_limit ?certify ?cert_node_budget template ~r_star =
  snd
    (run_with_encoding ?obs ?on_event ?strategy ?backend ?engine
       ?max_iterations ?solve_time_limit ?certify ?cert_node_budget template
       ~r_star)

let certificate_of_trace ~r_star trace =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | it :: rest -> (
        match it.cert with
        | None ->
            Error
              (Printf.sprintf "iteration %d was run without certification"
                 it.index)
        | Some (Error e) ->
            Error
              (Printf.sprintf "iteration %d failed to certify: %s" it.index e)
        | Some (Ok c) -> collect ((c, it.learned_rows) :: acc) rest)
  in
  match trace with
  | [] -> Error "empty trace: nothing to certify"
  | _ -> (
      match collect [] trace with
      | Error _ as e -> e
      | Ok iterations ->
          let final_objective =
            match List.rev trace with it :: _ -> Some it.cost | [] -> None
          in
          Ok (Archex_cert.chain ~r_star ~iterations ~final_objective))

type iteration = {
  index : int;
  config : Netgraph.Digraph.t;
  cost : float;
  reliability : float;
  per_sink : (int * float) list;
  k_estimate : int option;
  new_constraints : int;
  solver_time : float;
  analysis_time : float;
  stats : Milp.Solver.run_stats;
}

type trace = iteration list

let run ?(obs = Archex_obs.Ctx.null) ?on_event ?strategy ?backend ?engine
    ?(max_iterations = 50) ?(solve_time_limit = 180.) template ~r_star =
  let tracer = Archex_obs.Ctx.trace obs in
  let metrics = Archex_obs.Ctx.metrics obs in
  let root_attrs =
    if Archex_obs.Trace.enabled tracer then
      [ ("r_star", Archex_obs.Json.Num r_star) ]
    else []
  in
  Archex_obs.Trace.with_span ~attrs:root_attrs tracer "ilp_mr" @@ fun () ->
  let t_run = Archex_obs.Clock.now () in
  let t0 = Archex_obs.Clock.now () in
  let enc = Gen_ilp.encode ~obs template in
  let setup_time = Archex_obs.Clock.now () -. t0 in
  let learn_state = Learn_cons.init ~obs enc in
  let solver_total = ref 0. in
  let analysis_total = ref 0. in
  let trace = ref [] in
  let timing () =
    { Synthesis.setup_time;
      solver_time = !solver_total;
      analysis_time = !analysis_total }
  in
  let emit_iteration it =
    match on_event with
    | None -> ()
    | Some f ->
        f
          { Archex_obs.Event.source = "ilp-mr";
            kind = Archex_obs.Event.Iteration;
            elapsed = Archex_obs.Clock.now () -. t_run;
            data =
              [ ("iteration", float_of_int it.index);
                ("cost", it.cost);
                ("reliability", it.reliability);
                ("new_constraints", float_of_int it.new_constraints);
                ("solver_time", it.solver_time);
                ("analysis_time", it.analysis_time);
                ("nodes", float_of_int it.stats.Milp.Solver.nodes);
                ("conflicts", float_of_int it.stats.Milp.Solver.conflicts) ]
          }
  in
  (* One iteration of the Algorithm 1 loop, wrapped in its own span; the
     tail call happens outside the span so iteration n+1 is a sibling of
     iteration n, not its child. *)
  let step index =
    let attrs =
      if Archex_obs.Trace.enabled tracer then
        [ ("index", Archex_obs.Json.Num (float_of_int index)) ]
      else []
    in
    Archex_obs.Trace.with_span ~attrs tracer "iteration" @@ fun () ->
    Archex_obs.Metrics.incr
      (Archex_obs.Metrics.counter metrics "mr.iterations");
    match
      Gen_ilp.solve ~obs ?on_event ?backend ~time_limit:solve_time_limit enc
    with
    | None -> `Done (Synthesis.Unfeasible (List.rev !trace, timing ()))
    | Some (config, cost, stats) ->
        solver_total := !solver_total +. stats.Milp.Solver.elapsed;
        let report = Rel_analysis.analyze ~obs ?engine template config in
        analysis_total := !analysis_total +. report.Rel_analysis.elapsed;
        let reliability = report.Rel_analysis.worst in
        let record ~k_estimate ~new_constraints =
          let it =
            { index;
              config;
              cost;
              reliability;
              per_sink = report.Rel_analysis.per_sink;
              k_estimate;
              new_constraints;
              solver_time = stats.Milp.Solver.elapsed;
              analysis_time = report.Rel_analysis.elapsed;
              stats }
          in
          trace := it :: !trace;
          emit_iteration it
        in
        if Rel_analysis.meets report ~r_star then begin
          record ~k_estimate:None ~new_constraints:0;
          `Done
            (Synthesis.Synthesized
               ( Synthesis.architecture template config report,
                 List.rev !trace,
                 timing () ))
        end
        else begin
          match
            Learn_cons.learn ?strategy learn_state ~config ~reliability
              ~r_star
          with
          | Learn_cons.Saturated ->
              record ~k_estimate:None ~new_constraints:0;
              `Done (Synthesis.Unfeasible (List.rev !trace, timing ()))
          | Learn_cons.Learned { k; new_constraints } ->
              record ~k_estimate:(Some k) ~new_constraints;
              `Continue
        end
  in
  let rec iterate index =
    if index > max_iterations then
      Synthesis.Unfeasible (List.rev !trace, timing ())
    else
      match step index with
      | `Done result -> result
      | `Continue -> iterate (index + 1)
  in
  iterate 1

(** Reduced ordered binary decision diagrams with hash-consing.

    The workhorse of the exact reliability engine: the network structure
    function ("sink is connected") is compiled to a BDD over independent
    Bernoulli variables and its satisfaction probability is evaluated in one
    linear pass over the diagram.  Variable order is the variable index. *)

type man
(** A manager owns the unique-node table and operation caches.  Diagrams
    from different managers must not be mixed. *)

type t

exception Node_limit of { nodes : int; limit : int }
(** Raised by any diagram operation when creating one more decision node
    {e or ite-cache entry} would exceed the manager's [max_nodes] ceiling
    — the hook the degradation ladder uses to detect a BDD blowup before
    it eats the heap.  [nodes] is the accounted total (unique-table nodes
    plus cache entries; see {!accounted_size}).  The manager is left
    usable (no node was created). *)

val manager :
  ?metrics:Archex_obs.Metrics.t -> ?max_nodes:int -> nvars:int -> unit ->
  man
(** Variables are [0 .. nvars-1]; smaller index = closer to the root.
    [metrics] (default disabled) counts every fresh decision node under
    [rel.bdd_nodes] — the cost driver of the exact engine.
    [max_nodes] (default unlimited) caps the manager's accounted memory —
    decision nodes plus ite-cache entries; see {!Node_limit}.  The cache
    is counted because it grows alongside the unique table and is just as
    capable of eating the heap; {!clear_cache} reclaims its share of the
    allowance between computations. *)

val nvars : man -> int

val bot : t
(** Constant false. *)

val top : t
(** Constant true. *)

val var : man -> int -> t
(** The single-variable function [xᵢ]. *)

val neg : man -> t -> t
val conj : man -> t -> t -> t
val disj : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
(** [ite m f g h] is [if f then g else h]. *)

val conj_list : man -> t list -> t
val disj_list : man -> t list -> t

val equal : t -> t -> bool
(** Constant time: hash-consing makes equality physical. *)

val is_bot : t -> bool
val is_top : t -> bool

val root_decomposition : t -> int * t * t
(** [(x, lo, hi)] of a decision node: [f = if x then hi else lo].
    @raise Invalid_argument on a constant. *)

val node_id : t -> int
(** Unique id of a node within its manager (0 and 1 are the constants) —
    usable as a hash key thanks to hash-consing. *)

val size : t -> int
(** Number of decision nodes reachable from this root. *)

val node_count : man -> int
(** Total decision nodes ever created in the manager. *)

val cache_size : man -> int
(** Current ite-cache entries (O(1)). *)

val accounted_size : man -> int
(** [node_count + cache_size] — what is compared against [max_nodes]. *)

val clear_cache : man -> unit
(** Drop every ite-cache entry (correctness-neutral: the cache only
    memoizes).  Call between independent oracle computations on a reused
    manager so the previous computation's cache does not consume the next
    one's [max_nodes] allowance. *)

val probability : man -> (int -> float) -> t -> float
(** [probability m p f] is [P(f = 1)] when variable [i] is an independent
    Bernoulli with [P(xᵢ = 1) = p i].  Memoized per call, linear in
    [size f]. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under a concrete assignment. *)

(** Reduced ordered binary decision diagrams with hash-consing.

    The workhorse of the exact reliability engine: the network structure
    function ("sink is connected") is compiled to a BDD over independent
    Bernoulli variables and its satisfaction probability is evaluated in one
    linear pass over the diagram.  Variable order is the variable index. *)

type man
(** A manager owns the unique-node table and operation caches.  Diagrams
    from different managers must not be mixed. *)

type t

exception Node_limit of { nodes : int; limit : int }
(** Raised by any diagram operation when creating one more decision node
    would exceed the manager's [max_nodes] ceiling — the hook the
    degradation ladder uses to detect a BDD blowup before it eats the
    heap.  The manager is left usable (no node was created). *)

val manager :
  ?metrics:Archex_obs.Metrics.t -> ?max_nodes:int -> nvars:int -> unit ->
  man
(** Variables are [0 .. nvars-1]; smaller index = closer to the root.
    [metrics] (default disabled) counts every fresh decision node under
    [rel.bdd_nodes] — the cost driver of the exact engine.
    [max_nodes] (default unlimited) caps the total decision nodes the
    manager may ever create; see {!Node_limit}. *)

val nvars : man -> int

val bot : t
(** Constant false. *)

val top : t
(** Constant true. *)

val var : man -> int -> t
(** The single-variable function [xᵢ]. *)

val neg : man -> t -> t
val conj : man -> t -> t -> t
val disj : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
(** [ite m f g h] is [if f then g else h]. *)

val conj_list : man -> t list -> t
val disj_list : man -> t list -> t

val equal : t -> t -> bool
(** Constant time: hash-consing makes equality physical. *)

val is_bot : t -> bool
val is_top : t -> bool

val root_decomposition : t -> int * t * t
(** [(x, lo, hi)] of a decision node: [f = if x then hi else lo].
    @raise Invalid_argument on a constant. *)

val node_id : t -> int
(** Unique id of a node within its manager (0 and 1 are the constants) —
    usable as a hash key thanks to hash-consing. *)

val size : t -> int
(** Number of decision nodes reachable from this root. *)

val node_count : man -> int
(** Total decision nodes ever created in the manager. *)

val probability : man -> (int -> float) -> t -> float
(** [probability m p f] is [P(f = 1)] when variable [i] is an independent
    Bernoulli with [P(xᵢ = 1) = p i].  Memoized per call, linear in
    [size f]. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under a concrete assignment. *)

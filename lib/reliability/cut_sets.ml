module Iset = Set.Make (Int)

(* The failure function F = ¬working is monotone increasing in the failure
   variables, so its prime implicants are exactly the minimal cut sets.
   Standard recursive prime extraction over the (reduced, ordered) BDD with
   memoization and subsumption filtering. *)

let failure_bdd ~metrics ?bdd_max_nodes net ~sink =
  let man =
    Bdd.manager ~metrics ?max_nodes:bdd_max_nodes
      ~nvars:(Fail_model.var_count net) ()
  in
  let working = Fail_model.working_bdd net man ~sink in
  (man, Bdd.neg man working)

(* node identity for memoization *)
let rec primes memo ~max_width f =
  if Bdd.is_top f then [ Iset.empty ]
  else if Bdd.is_bot f then []
  else begin
    let key = Bdd.node_id f in
    match Hashtbl.find_opt memo key with
    | Some p -> p
    | None ->
        (* decompose on the root variable: F = x·F1 + ¬x·F0; monotone F has
           F0 ≤ F1, so primes(F) = primes(F0) ∪ {x∪q : q ∈ primes(F1)
           not subsuming a prime of F0} *)
        let x, f0, f1 = Bdd.root_decomposition f in
        let p0 = primes memo ~max_width f0 in
        let p1 = primes memo ~max_width f1 in
        let keeps q =
          Iset.cardinal q < max_width
          && not (List.exists (fun p -> Iset.subset p q) p0)
        in
        let extended =
          List.filter_map
            (fun q -> if keeps q then Some (Iset.add x q) else None)
            p1
        in
        let result = p0 @ extended in
        Hashtbl.add memo key result;
        result
  end

let minimal_cut_sets ?(obs = Archex_obs.Ctx.null) ?(max_width = max_int)
    ?bdd_max_nodes net ~sink =
  let trace = Archex_obs.Ctx.trace obs in
  let attrs =
    if Archex_obs.Trace.enabled trace then
      [ ("sink", Archex_obs.Json.Num (float_of_int sink)) ]
    else []
  in
  Archex_obs.Trace.with_span ~attrs trace "reliability.cut_sets" (fun () ->
      let _man, failure =
        failure_bdd
          ~metrics:(Archex_obs.Ctx.metrics obs)
          ?bdd_max_nodes net ~sink
      in
      let memo = Hashtbl.create 256 in
      let cuts = primes memo ~max_width failure in
      let cuts = List.map Iset.elements cuts in
      let metrics = Archex_obs.Ctx.metrics obs in
      if Archex_obs.Metrics.enabled metrics then
        Archex_obs.Metrics.add
          (Archex_obs.Metrics.counter metrics "rel.cut_sets")
          (float_of_int (List.length cuts));
      List.sort
        (fun a b ->
          let c = compare (List.length a) (List.length b) in
          if c <> 0 then c else compare a b)
        cuts)

let cut_probability net cut =
  List.fold_left (fun p v -> p *. Fail_model.var_fail net v) 1. cut

let rare_event_approximation ?obs ?bdd_max_nodes net ~sink =
  let cuts = minimal_cut_sets ?obs ?bdd_max_nodes net ~sink in
  List.fold_left (fun acc cut -> acc +. cut_probability net cut) 0. cuts

(* Bounds need the FULL minimal-cut-set family: width pruning would drop
   terms from the union bound and silently turn [hi] into a non-bound, so
   no ?max_width here. *)
let cut_bounds ?obs ?bdd_max_nodes net ~sink =
  let cuts = minimal_cut_sets ?obs ?bdd_max_nodes net ~sink in
  let lo =
    List.fold_left
      (fun acc cut -> Float.max acc (cut_probability net cut))
      0. cuts
  in
  let hi =
    Float.min 1.
      (List.fold_left (fun acc cut -> acc +. cut_probability net cut) 0. cuts)
  in
  (lo, Float.max lo hi)

let min_cut_width ?obs net ~sink =
  match minimal_cut_sets ?obs net ~sink with
  | [] -> max_int (* no cut: the sink can never be disconnected *)
  | first :: _ -> List.length first

let birnbaum_importance net ~sink v =
  let graph = Fail_model.graph net in
  let n = Netgraph.Digraph.node_count graph in
  if v < 0 || v >= n then invalid_arg "Cut_sets.birnbaum_importance";
  let with_prob p =
    let node_fail = Array.init n (Fail_model.node_fail net) in
    node_fail.(v) <- p;
    let edge_fail =
      List.filter_map
        (fun (a, b) ->
          let q = Fail_model.edge_fail net a b in
          if q > 0. then Some ((a, b), q) else None)
        (Netgraph.Digraph.edges graph)
    in
    Fail_model.make ~edge_fail graph
      ~sources:(Fail_model.sources net)
      ~node_fail
  in
  Exact.sink_failure (with_prob 1.) ~sink
  -. Exact.sink_failure (with_prob 0.) ~sink

(** Minimal cut sets and cut-based approximations.

    The dual view of the path-set analysis: a {e cut set} is a set of
    components whose joint failure disconnects the sink from every source.
    Minimal cut sets drive the classic rare-event approximation
    [r ≈ Σ_C Π_{v∈C} p_v], the standard output of fault-tree tooling — the
    methodology the paper contrasts with its structure-based approach
    (Sec. I), provided here for interoperability and cross-checking. *)

val minimal_cut_sets :
  ?obs:Archex_obs.Ctx.t -> ?max_width:int -> ?bdd_max_nodes:int ->
  Fail_model.t -> sink:int -> int list list
(** All minimal cut sets (over the model's variables: node ids, plus edge
    variables for failing edges), each sorted, the list ordered by width
    then lexicographically.  [max_width] prunes the enumeration (default:
    unbounded).  Computed from the structure-function BDD, so exact.
    A sink with no source connection yields [[[]]]-like degenerate data:
    the empty cut (it is always disconnected).
    [bdd_max_nodes] (default unlimited) caps the BDD manager; the
    enumeration raises {!Bdd.Node_limit} past it.
    [obs] (default disabled) wraps the enumeration in a
    ["reliability.cut_sets"] span and counts [rel.cut_sets] and
    [rel.bdd_nodes]. *)

val rare_event_approximation :
  ?obs:Archex_obs.Ctx.t -> ?bdd_max_nodes:int -> Fail_model.t -> sink:int ->
  float
(** [Σ_C Π p] over the minimal cut sets — an upper-bound-flavoured
    first-order estimate, asymptotically exact as probabilities shrink. *)

val cut_bounds :
  ?obs:Archex_obs.Ctx.t -> ?bdd_max_nodes:int -> Fail_model.t -> sink:int ->
  float * float
(** Rigorous two-sided bounds [(lo, hi)] on the sink failure probability:
    [lo = max_C Π p] (some minimal cut fails at least as often as the most
    probable one) and [hi = min(1, Σ_C Π p)] (union bound over all minimal
    cuts).  The enumeration is deliberately {e unpruned} — a width-pruned
    family would make the union bound unsound — so the only escape hatch is
    [bdd_max_nodes] ({!Bdd.Node_limit} past it).  This is the "bounded"
    rung of the degradation ladder: cheaper than full BDD probability
    evaluation on blowup-prone instances, still certifiable. *)

val min_cut_width : ?obs:Archex_obs.Ctx.t -> Fail_model.t -> sink:int -> int
(** Width of the smallest cut — the architecture's redundancy order (how
    many simultaneous failures it takes to lose the sink).  0 when the sink
    is already disconnected. *)

val birnbaum_importance : Fail_model.t -> sink:int -> int -> float
(** Birnbaum importance of a component: [∂r/∂p_v], i.e. the probability
    that [v] is critical — computed exactly as
    [r(p_v := 1) - r(p_v := 0)].  Ranks which component's reliability
    improvement buys the most system reliability. *)

type estimate = {
  mean : float;
  std_error : float;
  trials : int;
  failures : int;
}

(* Trials are split into fixed-size shards with per-shard PRNG streams
   derived from (seed, shard index) — NOT into jobs-sized chunks — so the
   draw sequence is a function of the seed and trial count alone.  Shard
   failure counts are summed in shard-index order; integer addition is
   associative, so the estimate is bit-identical at any [jobs]. *)
let shard_size = 4096

let shard_counts trials =
  let n_shards = (trials + shard_size - 1) / shard_size in
  Array.init n_shards (fun i ->
      if i = n_shards - 1 then trials - (i * shard_size) else shard_size)

let sample_shard ~seed ~index ~count net ~sink =
  let rng = Random.State.make [| seed; index |] in
  let failures = ref 0 in
  for _ = 1 to count do
    if not (Fail_model.sample_sink_works net rng ~sink) then incr failures
  done;
  !failures

let estimate_sink_failure ?obs ?(seed = 0x5eed) ?(jobs = 1) ?pool ~trials
    net ~sink =
  if trials <= 0 then invalid_arg "Monte_carlo: trials must be positive";
  if jobs < 1 then invalid_arg "Monte_carlo: jobs must be positive";
  let counts = shard_counts trials in
  let n_shards = Array.length counts in
  let indices = List.init n_shards Fun.id in
  let run i = sample_shard ~seed ~index:i ~count:counts.(i) net ~sink in
  let per_shard =
    match pool with
    | Some p when Archex_parallel.Pool.jobs p > 1 && n_shards > 1 ->
        Archex_parallel.Pool.map p run indices
    | Some _ -> List.map run indices
    | None when jobs > 1 && n_shards > 1 ->
        Archex_parallel.Pool.with_pool ?obs
          ~jobs:(min jobs n_shards)
          (fun p -> Archex_parallel.Pool.map p run indices)
    | None -> List.map run indices
  in
  let failures = List.fold_left ( + ) 0 per_shard in
  let n = float_of_int trials in
  let mean = float_of_int failures /. n in
  let std_error = sqrt (Float.max 0. (mean *. (1. -. mean) /. n)) in
  { mean; std_error; trials; failures }

let confidence_interval ?(z = 3.) e =
  let clamp x = Float.min 1. (Float.max 0. x) in
  (clamp (e.mean -. (z *. e.std_error)), clamp (e.mean +. (z *. e.std_error)))

let within e r k =
  Float.abs (r -. e.mean) <= (k *. e.std_error) +. 1e-12

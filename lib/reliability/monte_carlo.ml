type estimate = {
  mean : float;
  std_error : float;
  trials : int;
  failures : int;
}

let estimate_sink_failure ?(seed = 0x5eed) ~trials net ~sink =
  if trials <= 0 then invalid_arg "Monte_carlo: trials must be positive";
  let rng = Random.State.make [| seed |] in
  let failures = ref 0 in
  for _ = 1 to trials do
    if not (Fail_model.sample_sink_works net rng ~sink) then incr failures
  done;
  let n = float_of_int trials in
  let mean = float_of_int !failures /. n in
  let std_error = sqrt (Float.max 0. (mean *. (1. -. mean) /. n)) in
  { mean; std_error; trials; failures = !failures }

let confidence_interval ?(z = 3.) e =
  let clamp x = Float.min 1. (Float.max 0. x) in
  (clamp (e.mean -. (z *. e.std_error)), clamp (e.mean +. (z *. e.std_error)))

let within e r k =
  Float.abs (r -. e.mean) <= (k *. e.std_error) +. 1e-12

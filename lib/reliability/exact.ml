module Digraph = Netgraph.Digraph
module Paths = Netgraph.Paths

type engine =
  | Bdd_compilation
  | Inclusion_exclusion
  | Factoring

let engine_name = function
  | Bdd_compilation -> "bdd"
  | Inclusion_exclusion -> "inclusion-exclusion"
  | Factoring -> "factoring"

let bdd_failure ~metrics ?bdd_node_limit net ~sink =
  let man =
    Bdd.manager ~metrics ?max_nodes:bdd_node_limit
      ~nvars:(Fail_model.var_count net) ()
  in
  let working = Fail_model.working_bdd net man ~sink in
  1. -. Bdd.probability man (Fail_model.var_fail net) working

(* Inclusion–exclusion over minimal path sets: P(some path up) is the
   alternating sum over non-empty subsets S of paths of
   (-1)^(#S + 1) · prod over the union of S's variables of (1 - p). *)
let inclusion_exclusion_failure net ~sink =
  let g = Fail_model.graph net in
  let paths =
    Paths.minimal_path_sets g ~sources:(Fail_model.sources net) ~sink
  in
  let k = List.length paths in
  if k = 0 then 1.
  else if k > 24 then
    invalid_arg
      (Printf.sprintf
         "Exact.Inclusion_exclusion: %d minimal path sets exceed limit 24" k)
  else begin
    (* Variables of a path: its nodes plus its failing edges. *)
    let path_vars path =
      let rec edges = function
        | u :: (v :: _ as rest) -> (u, v) :: edges rest
        | [ _ ] | [] -> []
      in
      let node_vars = List.map (Fail_model.node_var net) path in
      let edge_vars =
        List.filter_map
          (fun (u, v) -> Fail_model.edge_var net u v)
          (edges path)
      in
      List.sort_uniq compare (node_vars @ edge_vars)
    in
    let sets = Array.of_list (List.map path_vars paths) in
    let union_up_probability mask =
      let module Iset = Set.Make (Int) in
      let union = ref Iset.empty in
      Array.iteri
        (fun i s ->
          if mask land (1 lsl i) <> 0 then
            union := List.fold_left (fun acc x -> Iset.add x acc) !union s)
        sets;
      Iset.fold
        (fun x acc -> acc *. (1. -. Fail_model.var_fail net x))
        !union 1.
    in
    let connected = ref 0. in
    for mask = 1 to (1 lsl k) - 1 do
      let bits =
        let rec popcount m acc =
          if m = 0 then acc else popcount (m lsr 1) (acc + (m land 1))
        in
        popcount mask 0
      in
      let sign = if bits land 1 = 1 then 1. else -1. in
      connected := !connected +. (sign *. union_up_probability mask)
    done;
    1. -. !connected
  end

(* Pivotal decomposition on a node-failure-only view.
   r(net) = p_v · r(net | v failed) + (1 - p_v) · r(net | v perfect). *)
let factoring_failure net ~sink =
  let net, _ = Fail_model.to_node_only net in
  let sources = Fail_model.sources net in
  let rec go g fail =
    (* Relevance: nodes on some source→sink walk in the residual graph. *)
    let reach = Digraph.reachable_from g sources in
    if not reach.(sink) then 1.
    else begin
      let co = Digraph.co_reachable_to g [ sink ] in
      let relevant v = reach.(v) && co.(v) in
      (* A perfect path ⇒ failure probability 0: test on the subgraph of
         perfect relevant nodes. *)
      let perfect = Array.init (Array.length fail)
          (fun v -> relevant v && fail.(v) = 0.)
      in
      let perfect_sub = Digraph.induced g perfect in
      let perfect_sources = List.filter (fun s -> perfect.(s)) sources in
      if perfect.(sink) && perfect_sources <> []
         && (List.exists (fun s -> Digraph.exists_path perfect_sub s sink)
               perfect_sources
             || List.mem sink perfect_sources)
      then 0.
      else begin
        (* Pivot on the relevant failing node with the largest probability. *)
        let pivot = ref (-1) in
        Array.iteri
          (fun v p ->
            if relevant v && p > 0.
               && (!pivot < 0 || p > fail.(!pivot)) then pivot := v)
          fail;
        if !pivot < 0 then
          (* no failing relevant node, but no perfect path either: the sink
             itself must be disconnected — handled above, so unreachable *)
          0.
        else begin
          let v = !pivot in
          let p = fail.(v) in
          (* v failed: drop the node entirely (unless it is the sink or the
             only source, where failure is fatal for this sink). *)
          let failed_branch =
            if v = sink then 1.
            else begin
              let keep = Array.make (Array.length fail) true in
              keep.(v) <- false;
              let g' = Digraph.induced g keep in
              let remaining_sources = List.filter (fun s -> s <> v) sources in
              if remaining_sources = [] then 1.
              else begin
                let fail' = Array.copy fail in
                fail'.(v) <- 0.;
                go g' fail'
              end
            end
          in
          let perfect_branch =
            let fail' = Array.copy fail in
            fail'.(v) <- 0.;
            go g fail'
          in
          (p *. failed_branch) +. ((1. -. p) *. perfect_branch)
        end
      end
    end
  in
  let g = Fail_model.graph net in
  let fail = Array.init (Digraph.node_count g) (Fail_model.node_fail net) in
  go g fail

let sink_failure ?(obs = Archex_obs.Ctx.null) ?(engine = Bdd_compilation)
    ?bdd_node_limit net ~sink =
  let trace = Archex_obs.Ctx.trace obs in
  let attrs =
    if Archex_obs.Trace.enabled trace then
      [ ("sink", Archex_obs.Json.Num (float_of_int sink));
        ("engine", Archex_obs.Json.Str (engine_name engine)) ]
    else []
  in
  Archex_obs.Trace.with_span ~attrs trace "reliability.sink" (fun () ->
      match engine with
      | Bdd_compilation ->
          bdd_failure
            ~metrics:(Archex_obs.Ctx.metrics obs)
            ?bdd_node_limit net ~sink
      | Inclusion_exclusion -> inclusion_exclusion_failure net ~sink
      | Factoring -> factoring_failure net ~sink)

let sink_failure_checked ?obs ?engine ?bdd_node_limit net ~sink =
  let module E = Archex_resilience.Error in
  match sink_failure ?obs ?engine ?bdd_node_limit net ~sink with
  | r -> Ok r
  | exception Bdd.Node_limit { nodes; limit } ->
      Error (E.Bdd_blowup { stage = "reliability.sink"; nodes; limit })
  | exception Invalid_argument msg ->
      (* the inclusion-exclusion path-set guard: the same capacity class *)
      Error
        (E.Bdd_blowup
           { stage = Printf.sprintf "reliability.sink: %s" msg;
             nodes = 0;
             limit = 0 })

let all_sink_failures ?obs ?engine net ~sinks =
  List.map (fun s -> (s, sink_failure ?obs ?engine net ~sink:s)) sinks

let worst_failure ?obs ?engine net ~sinks =
  List.fold_left (fun acc (_, r) -> Float.max acc r) 0.
    (all_sink_failures ?obs ?engine net ~sinks)

type t =
  | False
  | True
  | Node of { id : int; var : int; lo : t; hi : t }

type man = {
  n : int;
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo_id, hi_id) → node *)
  ite_cache : (int * int * int, t) Hashtbl.t;
  mutable cache_entries : int; (* = Hashtbl.length ite_cache, O(1) *)
  mutable next_id : int;
  max_nodes : int;
  fresh_nodes : Archex_obs.Metrics.counter;
}

exception Node_limit of { nodes : int; limit : int }

let manager ?(metrics = Archex_obs.Metrics.null) ?(max_nodes = max_int)
    ~nvars () =
  if nvars < 0 then invalid_arg "Bdd.manager";
  if max_nodes <= 0 then invalid_arg "Bdd.manager: max_nodes must be positive";
  { n = nvars;
    unique = Hashtbl.create 1024;
    ite_cache = Hashtbl.create 1024;
    cache_entries = 0;
    next_id = 2;
    max_nodes;
    fresh_nodes = Archex_obs.Metrics.counter metrics "rel.bdd_nodes" }

(* Memory accounted against [max_nodes]: unique-table nodes PLUS ite-cache
   entries.  The cache used to be unaccounted and grows without bound on
   pathological inputs — a blowup the ceiling exists to catch. *)
let accounted m = m.next_id - 2 + m.cache_entries

let check_capacity m =
  let nodes = accounted m in
  if nodes >= m.max_nodes then
    raise (Node_limit { nodes; limit = m.max_nodes })

let nvars m = m.n
let bot = False
let top = True

let id = function False -> 0 | True -> 1 | Node { id; _ } -> id

let node_var = function
  | False | True -> max_int
  | Node { var; _ } -> var

let low = function
  | Node { lo; _ } -> lo
  | (False | True) as t -> t

let high = function
  | Node { hi; _ } -> hi
  | (False | True) as t -> t

let mk m var lo hi =
  if lo == hi then lo
  else begin
    let key = (var, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some node -> node
    | None ->
        check_capacity m;
        let node = Node { id = m.next_id; var; lo; hi } in
        m.next_id <- m.next_id + 1;
        Archex_obs.Metrics.incr m.fresh_nodes;
        Hashtbl.add m.unique key node;
        node
  end

let var m i =
  if i < 0 || i >= m.n then invalid_arg "Bdd.var: out of range";
  mk m i False True

let rec ite m f g h =
  match f with
  | True -> g
  | False -> h
  | Node _ ->
      if g == h then g
      else if g == True && h == False then f
      else begin
        let key = (id f, id g, id h) in
        match Hashtbl.find_opt m.ite_cache key with
        | Some r -> r
        | None ->
            let v =
              min (node_var f) (min (node_var g) (node_var h))
            in
            let cof t = if node_var t = v then (low t, high t) else (t, t) in
            let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
            let lo = ite m f0 g0 h0 and hi = ite m f1 g1 h1 in
            let r = mk m v lo hi in
            check_capacity m;
            Hashtbl.add m.ite_cache key r;
            m.cache_entries <- m.cache_entries + 1;
            r
      end

let neg m f = ite m f False True
let conj m f g = ite m f g False
let disj m f g = ite m f True g

let conj_list m = List.fold_left (conj m) True
let disj_list m = List.fold_left (disj m) False

let equal a b = a == b
let is_bot f = f == False
let is_top f = f == True

let node_id = id

let root_decomposition = function
  | False | True -> invalid_arg "Bdd.root_decomposition: constant"
  | Node { var; lo; hi; _ } -> (var, lo, hi)

let size root =
  let seen = Hashtbl.create 64 in
  let rec count = function
    | False | True -> 0
    | Node { id; lo; hi; _ } ->
        if Hashtbl.mem seen id then 0
        else begin
          Hashtbl.add seen id ();
          1 + count lo + count hi
        end
  in
  count root

let node_count m = m.next_id - 2
let cache_size m = m.cache_entries
let accounted_size = accounted

let clear_cache m =
  Hashtbl.reset m.ite_cache;
  m.cache_entries <- 0

let probability _man p root =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | False -> 0.
    | True -> 1.
    | Node { id; var; lo; hi } -> (
        match Hashtbl.find_opt memo id with
        | Some v -> v
        | None ->
            let pv = p var in
            let v = (pv *. go hi) +. ((1. -. pv) *. go lo) in
            Hashtbl.add memo id v;
            v)
  in
  go root

let rec eval f assign =
  match f with
  | False -> false
  | True -> true
  | Node { var; lo; hi; _ } -> eval (if assign var then hi else lo) assign

(** Exact K-terminal failure probabilities ([RELANALYSIS]).

    Three independent engines; all compute
    [r_i = P(no all-working source→sink path)] exactly (Eq. 5 / the
    K-terminal reliability problem [1]).  The problem is NP-hard, which is
    precisely why ILP-MR calls it lazily and ILP-AR avoids it — but on
    architecture-sized graphs all three run in milliseconds and cross-check
    each other in the test suite. *)

type engine =
  | Bdd_compilation
      (** Compile the structure function to a BDD (default: polynomial on
          the layered architectures in this repository). *)
  | Inclusion_exclusion
      (** Σ over non-empty subsets of minimal path sets; exponential in the
          path count (guarded). *)
  | Factoring
      (** Pivotal decomposition  r = p·r(v failed) + (1-p)·r(v perfect). *)

val engine_name : engine -> string

val sink_failure :
  ?obs:Archex_obs.Ctx.t -> ?engine:engine -> ?bdd_node_limit:int ->
  Fail_model.t -> sink:int -> float
(** Failure probability [r] of one sink.  A sink unreachable even with all
    components perfect has [r = 1].  [obs] (default disabled) wraps the
    computation in a ["reliability.sink"] span (attributes: sink, engine)
    and, for the BDD engine, counts [rel.bdd_nodes].
    [bdd_node_limit] (default unlimited) caps the BDD manager's node count
    for the [Bdd_compilation] engine.
    @raise Bdd.Node_limit when [bdd_node_limit] is exceeded.
    @raise Invalid_argument for [Inclusion_exclusion] when the network has
    more than 24 minimal path sets. *)

val sink_failure_checked :
  ?obs:Archex_obs.Ctx.t -> ?engine:engine -> ?bdd_node_limit:int ->
  Fail_model.t -> sink:int ->
  (float, Archex_resilience.Error.t) result
(** Like {!sink_failure}, but capacity blowups come back as a typed
    [Error.Bdd_blowup] instead of an exception: both the BDD node ceiling
    and the inclusion–exclusion path-set guard map to that constructor
    (they are the same resource class — the compiled representation of the
    structure function grew beyond the budget). *)

val worst_failure :
  ?obs:Archex_obs.Ctx.t -> ?engine:engine -> Fail_model.t ->
  sinks:int list -> float
(** [max] of {!sink_failure} over the given sinks — the paper's single
    requirement figure [r] (Sec. III "worst case failure probability over a
    set of nodes of interest").  [sinks = []] yields [0]. *)

val all_sink_failures :
  ?obs:Archex_obs.Ctx.t -> ?engine:engine -> Fail_model.t ->
  sinks:int list -> (int * float) list

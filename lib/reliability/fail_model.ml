module Digraph = Netgraph.Digraph

type t = {
  graph : Digraph.t;
  sources : int list;
  node_fail : float array;
  edge_vars : (int * int, int * float) Hashtbl.t;
      (* failing edge → (variable, probability) *)
  nvars : int;
}

let check_prob p =
  if not (Float.is_finite p) || p < 0. || p > 1. then
    invalid_arg "Fail_model: probability outside [0, 1]"

let make ?(edge_fail = []) graph ~sources ~node_fail =
  let n = Digraph.node_count graph in
  if Array.length node_fail <> n then
    invalid_arg "Fail_model.make: node_fail size mismatch";
  Array.iter check_prob node_fail;
  if sources = [] then invalid_arg "Fail_model.make: no sources";
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Fail_model.make: bad source")
    sources;
  let edge_vars = Hashtbl.create 16 in
  let next = ref n in
  let add_edge ((u, v), p) =
    check_prob p;
    if not (Digraph.mem_edge graph u v) then
      invalid_arg "Fail_model.make: edge_fail entry not in graph";
    if p > 0. && not (Hashtbl.mem edge_vars (u, v)) then begin
      Hashtbl.add edge_vars (u, v) (!next, p);
      incr next
    end
  in
  List.iter add_edge edge_fail;
  { graph;
    sources = List.sort_uniq compare sources;
    node_fail = Array.copy node_fail;
    edge_vars;
    nvars = !next }

let graph t = t.graph
let sources t = t.sources

let node_fail t v =
  if v < 0 || v >= Array.length t.node_fail then
    invalid_arg "Fail_model.node_fail";
  t.node_fail.(v)

let edge_fail t u v =
  match Hashtbl.find_opt t.edge_vars (u, v) with
  | Some (_, p) -> p
  | None -> 0.

let var_count t = t.nvars
let node_var _ v = v

let edge_var t u v =
  Option.map fst (Hashtbl.find_opt t.edge_vars (u, v))

let var_fail t x =
  let n = Array.length t.node_fail in
  if x < n then t.node_fail.(x)
  else begin
    let found = ref 0. in
    Hashtbl.iter (fun _ (v, p) -> if v = x then found := p) t.edge_vars;
    !found
  end

let to_node_only t =
  if Hashtbl.length t.edge_vars = 0 then
    (t, Array.init (Array.length t.node_fail) Fun.id)
  else begin
    let n = Digraph.node_count t.graph in
    let extra = Hashtbl.length t.edge_vars in
    let g = Digraph.create (n + extra) in
    let node_fail = Array.make (n + extra) 0. in
    Array.blit t.node_fail 0 node_fail 0 n;
    let next = ref n in
    let route (u, v) =
      match Hashtbl.find_opt t.edge_vars (u, v) with
      | None -> Digraph.add_edge g u v
      | Some (_, p) ->
          let mid = !next in
          incr next;
          node_fail.(mid) <- p;
          Digraph.add_edge g u mid;
          Digraph.add_edge g mid v
    in
    List.iter route (Digraph.edges t.graph);
    (make g ~sources:t.sources ~node_fail, Array.init n Fun.id)
  end

(* Structure function over failure variables: F_v true means component v has
   failed.  working(i) = ¬F_i ∧ (source i ∨ ∨_{j→i} ¬F_ji ∧ working(j)).
   On a DAG one pass in topological order suffices; otherwise iterate the
   monotone operator to its least fixpoint. *)
let working_bdd t man ~sink =
  if Bdd.nvars man < t.nvars then
    invalid_arg "Fail_model.working_bdd: manager too small";
  let g = t.graph in
  let n = Digraph.node_count g in
  if sink < 0 || sink >= n then invalid_arg "Fail_model.working_bdd: sink";
  let is_source = Array.make n false in
  List.iter (fun s -> is_source.(s) <- true) t.sources;
  let up_node v =
    if t.node_fail.(v) = 0. then Bdd.top else Bdd.neg man (Bdd.var man v)
  in
  let up_edge u v =
    match Hashtbl.find_opt t.edge_vars (u, v) with
    | None -> Bdd.top
    | Some (x, _) -> Bdd.neg man (Bdd.var man x)
  in
  let step w v =
    let feed =
      if is_source.(v) then Bdd.top
      else
        Bdd.disj_list man
          (List.map (fun j -> Bdd.conj man (up_edge j v) w.(j))
             (Digraph.pred g v))
    in
    Bdd.conj man (up_node v) feed
  in
  match Digraph.topological_order g with
  | Some order ->
      let w = Array.make n Bdd.bot in
      List.iter (fun v -> w.(v) <- step w v) order;
      w.(sink)
  | None ->
      let w = ref (Array.make n Bdd.bot) in
      let stable = ref false in
      while not !stable do
        let w' = Array.init n (fun v -> step !w v) in
        stable := Array.for_all2 Bdd.equal !w w';
        w := w'
      done;
      !w.(sink)

let path_failure_probability t path =
  let rec go acc = function
    | [] -> acc
    | [ v ] -> acc *. (1. -. t.node_fail.(v))
    | u :: (v :: _ as rest) ->
        let acc = acc *. (1. -. t.node_fail.(u)) *. (1. -. edge_fail t u v) in
        go acc rest
  in
  1. -. go 1. path

let sample_sink_works t rng ~sink =
  let n = Digraph.node_count t.graph in
  let node_up = Array.init n (fun v -> Random.State.float rng 1. >= t.node_fail.(v)) in
  let edge_up u v =
    match Hashtbl.find_opt t.edge_vars (u, v) with
    | None -> true
    | Some (_, p) -> Random.State.float rng 1. >= p
  in
  (* BFS over up components and up edges *)
  let seen = Array.make n false in
  let queue = Queue.create () in
  let push v =
    if node_up.(v) && not seen.(v) then begin
      seen.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter push t.sources;
  let found = ref false in
  while not (Queue.is_empty queue || !found) do
    let v = Queue.pop queue in
    if v = sink then found := true
    else
      List.iter (fun w -> if edge_up v w then push w) (Digraph.succ t.graph v)
  done;
  !found

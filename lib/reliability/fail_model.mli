(** Failure model of an architecture (Sec. II, Eq. 5).

    Components (nodes) fail independently and permanently; a failed
    component's adjacent links are unusable.  Interconnections (edges) may
    also fail independently.  Because the control unit can activate any
    switch, a sink performs its function iff {e some} directed source→sink
    path has every node (and failing edge) working — Eq. 5 is exactly the
    complement of this property. *)

type t

val make :
  ?edge_fail:((int * int) * float) list ->
  Netgraph.Digraph.t -> sources:int list -> node_fail:float array -> t
(** [make g ~sources ~node_fail] builds a model.  [node_fail.(v)] is the
    self-failure probability [P_v] (0 = perfect component).  [edge_fail]
    lists interconnections with non-zero failure probability; unlisted edges
    are perfect.
    @raise Invalid_argument on size mismatch, probabilities outside [0,1],
    an empty source list, or an [edge_fail] entry not present in the
    graph. *)

val graph : t -> Netgraph.Digraph.t
val sources : t -> int list
val node_fail : t -> int -> float
val edge_fail : t -> int -> int -> float
(** 0 for perfect or absent edges. *)

val var_count : t -> int
(** Number of Bernoulli variables: one per node plus one per failing edge. *)

val node_var : t -> int -> int
(** BDD/sampling variable of a node (the identity). *)

val edge_var : t -> int -> int -> int option
(** Variable of a failing edge, [None] if the edge is perfect. *)

val var_fail : t -> int -> float
(** Failure probability of a variable (node or edge). *)

val to_node_only : t -> t * int array
(** Model with every failing edge replaced by an intermediate node carrying
    the edge's failure probability (series insertion) — an equivalent
    node-failure-only network, plus the mapping from old node ids to new
    (old nodes keep their ids; the array is the identity prefix).  Used by
    engines that only reason about node failures. *)

val working_bdd : t -> Bdd.man -> sink:int -> Bdd.t
(** Structure function "sink is connected to some source", over the model's
    variables ([var i] true = component [i] has {e failed}).  The manager
    must have at least {!var_count} variables.  Handles cyclic graphs by
    least-fixpoint iteration. *)

val path_failure_probability : t -> Netgraph.Paths.path -> float
(** [ρ(μ) = 1 - Π (1 - p)] over the path's nodes and its traversed failing
    edges — the single-path failure probability used by [ESTPATH]. *)

val sample_sink_works :
  t -> Random.State.t -> sink:int -> bool
(** Draw one joint failure sample and test connectivity (Monte-Carlo
    primitive). *)

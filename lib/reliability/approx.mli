(** The approximate reliability algebra of Sec. IV-A.

    Components contribute to a functional link's failure probability
    according to their {e degree of redundancy}: with [h_ij] components of
    type [j] used across the reduced paths of link [F_i],

    {[  r~_i  =  Σ_{j ∈ I_i}  h_ij · p_j^h_ij          (Eq. 7)  ]}

    where [I_i] is the set of types that {e jointly implement} [F_i]
    (appear on every path).  Theorem 2 bounds the optimism:
    [r~/r ≥ m·f / M_f]. *)

type link = {
  paths : Netgraph.Paths.path list;   (** the functional link's paths *)
  reduced : Netgraph.Paths.path list; (** reduced paths [μ̂] *)
  sink : int;
}

val functional_link :
  ?max_length:int -> ?max_count:int ->
  Netgraph.Digraph.t -> Netgraph.Partition.t -> sources:int list ->
  sink:int -> link
(** Enumerate the link's paths and their reductions. *)

val jointly_implements : Netgraph.Partition.t -> link -> int -> bool
(** [Π_j ⊢ F_i]: every path of the link crosses type [j].  A link with no
    paths is implemented by no type. *)

val implementing_types : Netgraph.Partition.t -> link -> int list
(** [I_i], increasing. *)

val degree_of_redundancy : Netgraph.Partition.t -> link -> int -> int
(** [h_ij]: distinct components of type [j] appearing on at least one
    reduced path. *)

val failure_estimate :
  Netgraph.Partition.t -> type_fail:(int -> float) -> link -> float
(** [r~] of Eq. 7.  [type_fail j] is the failure probability shared by the
    components of type [j].  A link with no paths estimates 1. *)

val theorem2_bound : Netgraph.Partition.t -> link -> float
(** The Theorem 2 ratio [m·f / M_f] with [m = |I|], [f] the path count and
    [M_f = Π_j |μ_j|]: the guaranteed lower bound on [r~ / r]. *)

val uniform_type_fail :
  Netgraph.Partition.t -> node_fail:(int -> float) -> int -> float
(** Derive [p_j] from per-node probabilities, checking they agree within the
    type (max deviation 1e-12).
    @raise Invalid_argument when members of a type disagree. *)

module Digraph = Netgraph.Digraph
module Partition = Netgraph.Partition
module Paths = Netgraph.Paths

type link = {
  paths : Paths.path list;
  reduced : Paths.path list;
  sink : int;
}

let functional_link ?max_length ?max_count g partition ~sources ~sink =
  let paths = Paths.simple_paths ?max_length ?max_count g ~sources ~sink in
  let reduced = List.map (Partition.reduce_path partition) paths in
  ignore partition;
  { paths; reduced; sink }

let jointly_implements partition link j =
  link.paths <> []
  && List.for_all
       (fun path -> List.exists (fun v -> Partition.type_of partition v = j)
                      path)
       link.paths

let implementing_types partition link =
  List.filter
    (jointly_implements partition link)
    (List.init (Partition.type_count partition) Fun.id)

let degree_of_redundancy partition link j =
  let members =
    List.concat_map
      (fun path ->
        List.filter (fun v -> Partition.type_of partition v = j) path)
      link.reduced
  in
  List.length (List.sort_uniq compare members)

let failure_estimate partition ~type_fail link =
  if link.paths = [] then 1.
  else begin
    let contribution j =
      let h = degree_of_redundancy partition link j in
      let p = type_fail j in
      float_of_int h *. (p ** float_of_int h)
    in
    List.fold_left
      (fun acc j -> acc +. contribution j)
      0.
      (implementing_types partition link)
  end

let theorem2_bound partition link =
  let f = List.length link.paths in
  if f = 0 then 0.
  else begin
    let m = List.length (implementing_types partition link) in
    let big_m =
      List.fold_left
        (fun acc path -> acc *. float_of_int (List.length path))
        1. link.paths
    in
    float_of_int m *. float_of_int f /. big_m
  end

let uniform_type_fail partition ~node_fail j =
  match Partition.members partition j with
  | [] -> invalid_arg "Approx.uniform_type_fail: empty type"
  | first :: rest ->
      let p = node_fail first in
      let agree v = Float.abs (node_fail v -. p) <= 1e-12 in
      if not (List.for_all agree rest) then
        invalid_arg
          (Printf.sprintf
             "Approx.uniform_type_fail: type %s members disagree"
             (Partition.name partition j));
      p

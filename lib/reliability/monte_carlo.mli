(** Monte-Carlo estimation of sink failure probabilities.

    Independent Bernoulli sampling of the joint failure state plus a
    connectivity check per trial.  Useful as an engine-agnostic
    cross-check of the exact engines (at moderate failure probabilities)
    and for failure-injection style testing; useless at the [1e-10] scale
    of certified avionics requirements — which is the paper's very argument
    for analytic methods.

    {2 PRNG}

    Sampling uses the OCaml standard library's [Random.State] (the lagged
    Fibonacci / L64X128 generator of the running stdlib version), with a
    dedicated state per call — never the global generator, so concurrent
    estimates and unrelated library code cannot perturb each other.  The
    seed defaults to a fixed constant ([0x5eed]); two calls with the same
    seed, trial count and network are bit-for-bit identical, which is what
    makes the sampled rung of the degradation ladder reproducible and
    checkpoint/resume deterministic.  Pass a different [?seed] explicitly
    to draw an independent replicate. *)

type estimate = {
  mean : float;          (** estimated failure probability *)
  std_error : float;     (** binomial standard error *)
  trials : int;
  failures : int;
}

val estimate_sink_failure :
  ?seed:int -> trials:int -> Fail_model.t -> sink:int -> estimate
(** [seed] defaults to [0x5eed] (fixed, see the PRNG note above).
    @raise Invalid_argument if [trials ≤ 0]. *)

val confidence_interval : ?z:float -> estimate -> float * float
(** Normal-approximation confidence interval [mean ± z·std_error], clamped
    to [[0, 1]].  [z] defaults to [3.] (≈ 99.7% two-sided coverage) — the
    width the degradation ladder reports when the exact engine has been
    replaced by sampling. *)

val within : estimate -> float -> float -> bool
(** [within e r k] — is [r] inside [k] standard errors of the estimate
    (always true for a degenerate all-failures/no-failures estimate whose
    standard error is 0 when [r] matches exactly)? *)

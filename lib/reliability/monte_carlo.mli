(** Monte-Carlo estimation of sink failure probabilities.

    Independent Bernoulli sampling of the joint failure state plus a
    connectivity check per trial.  Useful as an engine-agnostic
    cross-check of the exact engines (at moderate failure probabilities)
    and for failure-injection style testing; useless at the [1e-10] scale
    of certified avionics requirements — which is the paper's very argument
    for analytic methods.

    {2 PRNG and sharding}

    Sampling uses the OCaml standard library's [Random.State] (the lagged
    Fibonacci / L64X128 generator of the running stdlib version), with
    dedicated states per call — never the global generator, so concurrent
    estimates and unrelated library code cannot perturb each other.

    Trials are split into fixed-size shards (4096 trials each) whose PRNG
    streams are derived deterministically from [(seed, shard index)], and
    shard failure counts are summed in shard-index order.  The shard
    layout depends only on [seed] and [trials] — never on [jobs] — so an
    estimate is bit-for-bit identical whether it was computed serially or
    on any number of domains.  That is what makes the sampled rung of the
    degradation ladder reproducible and checkpoint/resume deterministic
    under [-j].  The seed defaults to a fixed constant ([0x5eed]); pass a
    different [?seed] explicitly to draw an independent replicate. *)

type estimate = {
  mean : float;          (** estimated failure probability *)
  std_error : float;     (** binomial standard error *)
  trials : int;
  failures : int;
}

val estimate_sink_failure :
  ?obs:Archex_obs.Ctx.t -> ?seed:int -> ?jobs:int ->
  ?pool:Archex_parallel.Pool.t ->
  trials:int -> Fail_model.t -> sink:int -> estimate
(** [seed] defaults to [0x5eed] (fixed, see the PRNG note above).
    [jobs] (default 1) samples the shards on that many domains; [pool]
    reuses an existing {!Archex_parallel.Pool} instead of spinning one
    up.  [obs] instruments a pool created here with the scheduler
    telemetry (ignored when [pool] is given — that pool already carries
    its own).  The estimate is bit-identical for any [jobs]/[pool]
    choice.
    @raise Invalid_argument if [trials ≤ 0] or [jobs < 1]. *)

val confidence_interval : ?z:float -> estimate -> float * float
(** Normal-approximation confidence interval [mean ± z·std_error], clamped
    to [[0, 1]].  [z] defaults to [3.] (≈ 99.7% two-sided coverage) — the
    width the degradation ladder reports when the exact engine has been
    replaced by sampling. *)

val within : estimate -> float -> float -> bool
(** [within e r k] — is [r] inside [k] standard errors of the estimate
    (always true for a degenerate all-failures/no-failures estimate whose
    standard error is 0 when [r] matches exactly)? *)

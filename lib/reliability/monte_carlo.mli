(** Monte-Carlo estimation of sink failure probabilities.

    Independent Bernoulli sampling of the joint failure state plus a
    connectivity check per trial.  Useful as an engine-agnostic
    cross-check of the exact engines (at moderate failure probabilities)
    and for failure-injection style testing; useless at the [1e-10] scale
    of certified avionics requirements — which is the paper's very argument
    for analytic methods. *)

type estimate = {
  mean : float;          (** estimated failure probability *)
  std_error : float;     (** binomial standard error *)
  trials : int;
  failures : int;
}

val estimate_sink_failure :
  ?seed:int -> trials:int -> Fail_model.t -> sink:int -> estimate
(** @raise Invalid_argument if [trials ≤ 0]. *)

val within : estimate -> float -> float -> bool
(** [within e r k] — is [r] inside [k] standard errors of the estimate
    (always true for a degenerate all-failures/no-failures estimate whose
    standard error is 0 when [r] matches exactly)? *)

(** Cooperative cancellation tokens.

    A token is a shared flag that one domain sets and others poll at safe
    points (solver tick loops, between work items).  Cancellation is
    cooperative: nothing is interrupted, the worker notices the flag at
    its next poll and winds down through its normal limit-exit path, so
    invariants (incumbents, proven bounds) survive cancellation.

    Tokens form an optional tree: cancelling a parent cancels every
    descendant, so an outer deadline can sweep a whole portfolio while
    each racer still holds a private token for "a sibling won". *)

type t

val create : ?parent:t -> unit -> t
(** A fresh, uncancelled token; with [parent], the token also reports
    cancelled whenever the parent (transitively) does. *)

val cancel : t -> unit
(** Set the flag.  Idempotent, safe from any domain. *)

val is_cancelled : t -> bool
(** Poll the flag (and the parent chain).  Lock-free. *)

val cancelled_at : t -> float option
(** Monotonic time ({!Archex_obs.Clock.now}) of the first {!cancel} on
    this token — or, when the token itself was never cancelled, on the
    nearest cancelled ancestor.  [None] while uncancelled.  The
    difference between "now" at the point a worker actually wound down
    and this stamp is the cancellation latency the scheduler telemetry
    reports. *)

val guard : t -> unit -> bool
(** [guard t] is [fun () -> is_cancelled t] — the shape solver backends
    take as [?should_stop]. *)

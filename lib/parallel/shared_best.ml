(* The cell holds the best-so-far (cost, solution) under minimization.
   Publication is a compare-and-set loop keeping the minimum, so any
   number of domains can race improving incumbents without a lock; the
   solution array must not be mutated after publication (both exact
   backends allocate a fresh array per incumbent, so sharing is free).
   Each entry carries its publication time so adopters can report the
   install latency — how long an incumbent sat in the cell before a
   sibling pruned with it. *)

type entry = { cost : float; solution : float array; published_at : float }

type t = entry option Atomic.t

let create () = Atomic.make None

let tol c = 1e-9 *. Float.max 1. (Float.abs c)

let improves cell cost =
  match Atomic.get cell with
  | None -> true
  | Some e -> cost < e.cost -. tol e.cost

let publish cell cost solution =
  let fresh = { cost; solution; published_at = Archex_obs.Clock.now () } in
  let rec attempt () =
    let seen = Atomic.get cell in
    let better =
      match seen with
      | None -> true
      | Some e -> cost < e.cost -. tol e.cost
    in
    if not better then false
    else if Atomic.compare_and_set cell seen (Some fresh) then true
    else attempt ()
  in
  attempt ()

let get cell =
  Option.map (fun e -> (e.cost, e.solution)) (Atomic.get cell)

let get_timed cell =
  Option.map
    (fun e -> (e.cost, e.solution, e.published_at))
    (Atomic.get cell)

let best_cost cell = Option.map (fun e -> e.cost) (Atomic.get cell)

(* The cell holds the best-so-far (cost, solution) under minimization.
   Publication is a compare-and-set loop keeping the minimum, so any
   number of domains can race improving incumbents without a lock; the
   solution array must not be mutated after publication (both exact
   backends allocate a fresh array per incumbent, so sharing is free). *)

type t = (float * float array) option Atomic.t

let create () = Atomic.make None

let tol c = 1e-9 *. Float.max 1. (Float.abs c)

let improves cell cost =
  match Atomic.get cell with
  | None -> true
  | Some (best, _) -> cost < best -. tol best

let rec publish cell cost solution =
  let seen = Atomic.get cell in
  let better =
    match seen with
    | None -> true
    | Some (best, _) -> cost < best -. tol best
  in
  if not better then false
  else if Atomic.compare_and_set cell seen (Some (cost, solution)) then true
  else publish cell cost solution

let get cell = Atomic.get cell
let best_cost cell = Option.map fst (Atomic.get cell)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopped do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    job ();
    worker_loop t
  end

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    { jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopped = false;
      workers = [] }
  in
  (* the caller's domain participates in every [run], so a pool of [jobs]
     spawns jobs - 1 extra domains; jobs = 1 degrades to plain serial
     execution with no domain at all *)
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  if not was_stopped then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let run t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let remaining = Atomic.make n in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let task i () =
      (try results.(i) <- Some (thunks.(i) ())
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last task out: wake the caller (the lock makes the broadcast
           visible to a caller already committed to waiting) *)
        Mutex.lock done_lock;
        Condition.broadcast done_cond;
        Mutex.unlock done_lock
      end
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    (* the caller drains the queue alongside the workers ... *)
    let rec drain () =
      Mutex.lock t.lock;
      let job =
        if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
      in
      Mutex.unlock t.lock;
      match job with
      | Some j ->
          j ();
          drain ()
      | None -> ()
    in
    drain ();
    (* ... then blocks until in-flight tasks land *)
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    (match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         results)
  end

let map t f items = run t (List.map (fun x () -> f x) items)

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

module Obs = Archex_obs

(* A queued job remembers when it was enqueued so the scheduler can
   report queue-wait latency; the job body receives the executing
   worker's slot (0 = the calling domain, 1.. = spawned workers) so
   per-domain series can be attributed. *)
type job = { body : int -> unit; enqueued_at : float }

type t = {
  jobs : int;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  (* telemetry — every handle comes from the pool's [?obs] registry, so
     with the default null context all of this is shared write-only
     dummies and the hot path stays allocation-free *)
  timed : bool;  (* skip Clock reads entirely when nothing records them *)
  busy : int Atomic.t;
  queue_depth : Obs.Metrics.gauge;
  workers_busy : Obs.Metrics.gauge;
  enqueued_c : Obs.Metrics.counter;
  started_c : Obs.Metrics.counter;
  finished_c : Obs.Metrics.counter;
  job_seconds : Obs.Metrics.histogram;
  queue_wait : Obs.Metrics.histogram;
  slot_busy : Obs.Metrics.counter array;  (* busy seconds per slot *)
  trace : Obs.Trace.t;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

let now t = if t.timed then Obs.Clock.now () else 0.

(* Execute one dequeued job on [slot], tracking the idle→busy→idle
   transition, queue wait and run time. *)
let exec t slot job =
  let t0 = now t in
  Obs.Metrics.incr t.started_c;
  Obs.Metrics.set t.workers_busy
    (float_of_int (1 + Atomic.fetch_and_add t.busy 1));
  if t.timed then Obs.Metrics.observe t.queue_wait (t0 -. job.enqueued_at);
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set t.workers_busy
        (float_of_int (Atomic.fetch_and_add t.busy (-1) - 1));
      Obs.Metrics.incr t.finished_c;
      if t.timed then begin
        let dt = Obs.Clock.now () -. t0 in
        Obs.Metrics.observe t.job_seconds dt;
        Obs.Metrics.add t.slot_busy.(slot) dt
      end)
    (fun () ->
      Obs.Trace.with_span
        ~attrs:[ ("slot", Obs.Json.Num (float_of_int slot)) ]
        t.trace "pool.job"
        (fun () -> job.body slot))

let rec worker_loop t slot =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopped do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
  else begin
    let job = Queue.pop t.queue in
    Obs.Metrics.set t.queue_depth (float_of_int (Queue.length t.queue));
    Mutex.unlock t.lock;
    exec t slot job;
    worker_loop t slot
  end

let create ?(obs = Obs.Ctx.null) ?(dedicated = false) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let metrics = Obs.Ctx.metrics obs in
  let counter = Obs.Metrics.counter metrics in
  let t =
    { jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopped = false;
      workers = [];
      timed = Obs.Metrics.enabled metrics;
      busy = Atomic.make 0;
      queue_depth = Obs.Metrics.gauge metrics "pool.queue_depth";
      workers_busy = Obs.Metrics.gauge metrics "pool.workers_busy";
      enqueued_c = counter "pool.jobs_enqueued";
      started_c = counter "pool.jobs_started";
      finished_c = counter "pool.jobs_finished";
      job_seconds = Obs.Metrics.histogram metrics "pool.job_seconds";
      queue_wait = Obs.Metrics.histogram metrics "pool.queue_wait_seconds";
      slot_busy =
        Array.init jobs (fun i ->
            counter (Printf.sprintf "pool.worker_busy_seconds{domain=%S}"
                       (string_of_int i)));
      trace = Obs.Ctx.trace obs }
  in
  Obs.Metrics.set (Obs.Metrics.gauge metrics "pool.size") (float_of_int jobs);
  (* the caller's domain participates in every [run], so a pool of [jobs]
     spawns jobs - 1 extra domains; jobs = 1 degrades to plain serial
     execution with no domain at all.  A [dedicated] pool instead spawns
     all [jobs] workers: the caller is a scheduler (the serve daemon's
     accept loop) that never drains, so [submit]ted work always has a
     domain to land on. *)
  t.workers <-
    (if dedicated then
       List.init jobs (fun i -> Domain.spawn (fun () -> worker_loop t i))
     else
       List.init (jobs - 1) (fun i ->
           Domain.spawn (fun () -> worker_loop t (i + 1))));
  t

let shutdown t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  if not was_stopped then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let run t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let remaining = Atomic.make n in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let task i _slot =
      (try results.(i) <- Some (thunks.(i) ())
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last task out: wake the caller (the lock makes the broadcast
           visible to a caller already committed to waiting) *)
        Mutex.lock done_lock;
        Condition.broadcast done_cond;
        Mutex.unlock done_lock
      end
    in
    Obs.Trace.instant
      ~attrs:[ ("jobs", Obs.Json.Num (float_of_int n)) ]
      t.trace "pool.enqueue";
    let enqueued_at = now t in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.add { body = task i; enqueued_at } t.queue
    done;
    Obs.Metrics.add t.enqueued_c (float_of_int n);
    Obs.Metrics.set t.queue_depth (float_of_int (Queue.length t.queue));
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    (* the caller drains the queue alongside the workers (slot 0) ... *)
    let rec drain () =
      Mutex.lock t.lock;
      let job =
        if Queue.is_empty t.queue then None
        else begin
          let job = Queue.pop t.queue in
          Obs.Metrics.set t.queue_depth (float_of_int (Queue.length t.queue));
          Some job
        end
      in
      Mutex.unlock t.lock;
      match job with
      | Some j ->
          exec t 0 j;
          drain ()
      | None -> ()
    in
    drain ();
    (* ... then blocks until in-flight tasks land *)
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    (match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         results)
  end

let submit t f =
  let enqueued_at = now t in
  Mutex.lock t.lock;
  if t.stopped then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  (* an escaping exception would kill the worker's loop and silently
     shrink the pool — swallow it here; callers that care (the serve
     engine) wrap the task in [Error.guard] and park the result *)
  Queue.add
    { body = (fun _slot -> try f () with _ -> ()); enqueued_at }
    t.queue;
  Obs.Metrics.incr t.enqueued_c;
  Obs.Metrics.set t.queue_depth (float_of_int (Queue.length t.queue));
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let map t f items = run t (List.map (fun x () -> f x) items)

let with_pool ?obs ~jobs f =
  let t = create ?obs ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** Fixed-size domain pool with a shared work queue.

    A pool of [jobs] runs work on [jobs] domains: [jobs - 1] spawned
    workers plus the calling domain, which always participates in
    {!run}/{!map} — so [jobs = 1] is plain serial execution with no
    domain spawned and no synchronization beyond an uncontended mutex.

    Tasks must confine shared mutation to thread-safe cells
    ({!Stdlib.Atomic}, {!Shared_best}, the Atomic-backed
    [Archex_obs.Metrics]); everything else they touch should be
    task-local.  Pools are cheap enough to create per operation
    (one [Domain.spawn] per extra worker).

    {b Telemetry.}  A pool created with [?obs] reports scheduler state
    into the context's metrics registry: gauges [pool.size],
    [pool.queue_depth] and [pool.workers_busy]; counters
    [pool.jobs_enqueued] / [pool.jobs_started] / [pool.jobs_finished]
    and per-slot [pool.worker_busy_seconds{domain="i"}] (slot 0 is the
    calling domain); histograms [pool.job_seconds] and
    [pool.queue_wait_seconds].  When the context carries a tracer, each
    executed job is a [pool.job] span (tagged with its slot) on the
    executing domain and each {!run} submission a [pool.enqueue]
    instant.  With the default null context all handles are shared
    dummies and nothing is timed. *)

type t

val create :
  ?obs:Archex_obs.Ctx.t -> ?dedicated:bool -> jobs:int -> unit -> t
(** [dedicated] (default [false]) spawns all [jobs] workers instead of
    [jobs - 1]: the caller is then a scheduler that never drains the
    queue itself (the serve daemon's accept loop), and {!submit}ted work
    always has a domain to land on.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute every thunk (order-preserving results), distributing across
    the pool's domains; the caller works too.  Exceptions are caught per
    task; after all tasks finish, the first one raised (in completion
    order) is re-raised with its backtrace. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f items] = [run t (List.map (fun x () -> f x) items)]. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue one task and return immediately.  The task
    runs on a spawned worker, so the pool must have at least one
    ([jobs >= 2], or any [dedicated] pool).  The caller is responsible
    for its own completion signalling (the serve engine parks a result
    cell per job).  Exceptions escaping the task are swallowed (a dead
    worker would silently shrink the pool) — catch and record them
    inside the task.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Stop the workers and join their domains.  Idempotent.  Submitted
    work still queued is completed first. *)

val with_pool : ?obs:Archex_obs.Ctx.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] even on exception. *)

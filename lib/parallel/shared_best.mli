(** Lock-free shared incumbent for portfolio minimization.

    One cell is handed to every racer of a portfolio solve; each
    publishes improving incumbents and periodically installs the cell's
    best into its own search, so the backends prune with each other's
    bounds.  The stored solution array is treated as immutable after
    publication. *)

type t

val create : unit -> t
(** An empty cell (no incumbent yet). *)

val publish : t -> float -> float array -> bool
(** [publish cell cost solution] installs [(cost, solution)] iff it
    improves on the current content beyond a relative 1e-9 tolerance
    (compare-and-set loop; linearizable).  Returns whether it won.  The
    array is kept by reference — callers must not mutate it afterwards. *)

val improves : t -> float -> bool
(** Would [publish] with this cost currently succeed?  (Racy by nature —
    use only to skip building a solution copy.) *)

val get : t -> (float * float array) option

val get_timed : t -> (float * float array * float) option
(** Like {!get}, with the {!Archex_obs.Clock.now} stamp taken when the
    entry was published — the adopter's [now - published_at] is the
    incumbent install latency reported by the scheduler telemetry. *)

val best_cost : t -> float option

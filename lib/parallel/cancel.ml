type t = {
  flag : bool Atomic.t;
  at : float option Atomic.t;  (* when the first cancel landed *)
  parent : t option;
}

let create ?parent () =
  { flag = Atomic.make false; at = Atomic.make None; parent }

let cancel t =
  (* stamp before raising the flag so an observer that sees the flag also
     sees the time; only the first cancel wins the stamp *)
  ignore (Atomic.compare_and_set t.at None (Some (Archex_obs.Clock.now ())));
  Atomic.set t.flag true

let rec is_cancelled t =
  Atomic.get t.flag
  || (match t.parent with Some p -> is_cancelled p | None -> false)

let rec cancelled_at t =
  match Atomic.get t.at with
  | Some _ as stamp -> stamp
  | None -> (
      match t.parent with Some p -> cancelled_at p | None -> None)

let guard t () = is_cancelled t

type t = { flag : bool Atomic.t; parent : t option }

let create ?parent () = { flag = Atomic.make false; parent }

let cancel t = Atomic.set t.flag true

let rec is_cancelled t =
  Atomic.get t.flag
  || (match t.parent with Some p -> is_cancelled p | None -> false)

let guard t () = is_cancelled t

(** Admission control and load shedding for the serve queue.

    Pure policy: given the queue state and a job spec, decide to accept,
    accept {e degraded} (shed down the anytime ladder: the job runs with
    a tiny BDD ceiling, so the reliability oracle falls back to cut-set
    bounds or Monte-Carlo instead of exact analysis), or reject with a
    typed reason.  The daemon stays responsive under overload by
    degrading answers instead of queueing unboundedly — the same
    anytime principle the synthesis stack applies to budgets.

    The [Queue_overload] fault kind makes the pressure path testable
    without a real backlog: an injected probe fires the shed decision
    exactly where genuine queue pressure would. *)

type config = {
  capacity : int;
      (** hard queue bound: at [capacity] pending jobs, reject
          ["queue-full"] *)
  shed_watermark : float;
      (** fraction of [capacity] (0–1] above which new jobs are admitted
          degraded *)
  max_generators : int;
      (** largest scaling-family instance served; bigger is
          ["too-large"] *)
  tight_deadline_s : float;
      (** a requested deadline below this cannot finish exactly —
          admit degraded *)
}

val default : config
(** capacity 16, watermark 0.75, max 12 generators, 0.5 s tight
    deadline. *)

val validate : config -> (unit, string) result

type decision =
  | Accept
  | Accept_degraded of string    (** why: ["queue-pressure"] /
                                     ["tight-deadline"] *)
  | Reject of { reason : string; detail : string }
      (** reason: ["queue-full"] / ["too-large"] *)

val decide : config -> queue_depth:int -> Protocol.job -> decision
(** [queue_depth] is the number of admitted-but-unfinished jobs
    {e before} this one.  Probes the [Queue_overload] fault once per
    call. *)

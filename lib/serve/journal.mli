(** Crash-safe job journal: an append-only NDJSON ledger of every
    accepted job's state transitions.

    One record per transition:
    [{"at": <unix time>, "id": ..., "state": ..., ...}] with states
    ["accepted"] (carries the full job spec), ["running"] (attempt
    number), ["done"] (verdict), ["failed"] (typed error),
    ["shed"], ["interrupted"], ["dead-letter"].

    {b Durability.}  Appends are flushed {e and fsynced} before the
    state change is acted on — an accepted job is on disk before its
    ["accepted"] event reaches the client, so a crash after the ack can
    never lose it.  A torn final line (the crash happened mid-append) is
    tolerated on recovery via relaxed NDJSON parsing, the same
    discipline [archex top] applies to live metric streams.

    {b Recovery.}  {!recover} folds the ledger to each job's last state:
    jobs still ["accepted"] are requeued as-is; jobs caught ["running"]
    are marked ["interrupted"] (a new appended record, not a rewrite)
    and requeued to retry under backoff.  Completed jobs are never
    re-run — the kill-and-restart property is: no accepted job lost,
    no job double-completed.

    {b Compaction.}  The ledger grows forever; {!compact} rewrites it
    keeping only incomplete jobs' records, using the checkpoint
    discipline (tmp + fsync + rename) so a crash mid-compaction leaves
    either the old or the new ledger, never a truncated one.  Appends
    within one process are serialized by an internal mutex (pool
    workers journal their own transitions). *)

type t

val path : dir:string -> string
(** [dir ^ "/journal.ndjson"] — where {!open_journal} appends. *)

val open_journal : dir:string -> (t, string) result
(** Create [dir] (and parents) if needed and open the ledger for
    appending. *)

val append : t -> id:string -> state:string ->
  ?fields:(string * Archex_obs.Json.t) list -> unit -> unit
(** Append one transition record (timestamped now), flush, fsync. *)

val close : t -> unit

type recovered = {
  job : Protocol.job;
  last_state : string;    (** ["accepted"] or ["interrupted"] *)
  attempts : int;         (** ["running"] records seen — attempts
                              already consumed before the crash *)
}

val recover : dir:string -> (recovered list, string) result
(** Scan the ledger (absent file = no jobs) and return the incomplete
    jobs in acceptance order.  Pure read: the caller appends the
    ["interrupted"] records (via {!append}) once the journal is
    reopened, so a recovery scan is harmless on a live ledger. *)

val compact : t -> keep:(string -> bool) -> (unit, string) result
(** Rewrite the ledger atomically, keeping only records whose job id
    satisfies [keep]. *)

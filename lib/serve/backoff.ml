type t = {
  base : float;
  cap : float;
  seed : int;
  mutable rng : int;
  mutable prev : float;
}

let create ?(seed = 0xb0ff) ?(base = 0.05) ?(cap = 5.0) () =
  if not (base > 0. && base <= cap) then
    invalid_arg "Backoff.create: need 0 < base <= cap";
  let seed = (seed land 0x3FFFFFFF) lor 1 in
  { base; cap; seed; rng = seed; prev = base }

(* Lehmer-style LCG over 30 bits — matches Faults' generator family *)
let uniform t =
  t.rng <- t.rng * 48271 land 0x3FFFFFFF;
  float_of_int t.rng /. float_of_int 0x40000000

let next t =
  let hi = Float.max t.base (3. *. t.prev) in
  let d = Float.min t.cap (t.base +. ((hi -. t.base) *. uniform t)) in
  t.prev <- d;
  d

let reset t =
  t.rng <- t.seed;
  t.prev <- t.base

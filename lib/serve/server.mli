(** The daemon front-end: request transport, event fan-out, signal-driven
    drain.

    Two transports share one engine and one select loop:

    - {b pipe} — NDJSON requests on an input channel, events on an
      output channel (stdin/stdout in the CLI).  The mode CI and the
      tests use: a client is a heredoc.
    - {b socket} — a Unix domain socket; every connected client speaks
      the same line protocol, and job events are delivered to the client
      that submitted the job (control responses to the requester).

    {b Shutdown.}  Three triggers, one path: end-of-input (pipe),
    a [{"op":"shutdown"}] request, or {!request_drain} (the CLI's
    SIGTERM/SIGINT handler).  The server stops admitting, cancels
    in-flight jobs via their tokens (they journal as ["interrupted"]),
    waits for the pool to quiesce, compacts and closes the journal, and
    emits a final ["bye"] with the exit code: [0] for a requested
    shutdown, [130] for a signal-initiated one.

    {b Recovery.}  On start the journal of a previous process (same
    [--dir]) is scanned: still-accepted jobs are requeued, interrupted
    ones retried under backoff — the kill-and-restart property the
    serve tests pin down.

    An injected [Slow_client] fault drops ["progress"] events (never
    terminal ones), simulating a client that stopped draining its
    stream; the drop count surfaces in [serve.slow_client_drops]. *)

val proto_version : int

val request_drain : unit -> unit
(** Flip the drain flag from a signal handler (async-signal-safe: sets
    an atomic).  The select loop notices within its timeout. *)

val drain_requested : unit -> bool

val reset_drain : unit -> unit
(** Clear the flag (tests run several servers in one process). *)

val serve_pipe :
  ?obs:Archex_obs.Ctx.t ->
  config:Engine.config -> dir:string ->
  in_channel -> out_channel -> int
(** Run until end-of-input / shutdown / drain; returns the exit code. *)

val serve_socket :
  ?obs:Archex_obs.Ctx.t ->
  config:Engine.config -> dir:string -> string -> int
(** [serve_socket ~config ~dir path] listens on a Unix domain socket at
    [path] (unlinked and rebound on start, removed on exit).  Runs until
    shutdown / drain. *)

(** Execute one admitted job under its budget.

    A job runs an EPS synthesis ([mr] / [ar]) or a reliability analysis
    of the template's full candidate configuration ([analyze]), entirely
    through the trust-boundary entry points — every failure is a typed
    {!Archex_resilience.Error.t} in the outcome, never an exception.

    {b Verdict.}  The outcome's [verdict] names the worst reliability
    ladder rung that contributed to the reported figure — ["exact"],
    ["bounded"] or ["sampled"] — obtained by re-analyzing the final
    configuration under the job's BDD ceiling.  A degraded admission
    (tiny ceiling) therefore shows up as a non-exact verdict in the
    response, which is the contract the shed policy promises: answers
    degrade, visibly, instead of queueing unboundedly.

    The [Job_crash] fault kind is probed once per attempt: an injected
    crash surfaces as an [Internal] error tagged ["injected: job-crash"]
    — the retryable failure the backoff tests and the CI smoke job
    exercise. *)

type outcome = {
  status : string;
      (** ["ok"], ["unfeasible"], ["exhausted"], ["failed"] *)
  verdict : string;
      (** ["exact"] / ["bounded"] / ["sampled"]; ["none"] without a
          configuration to analyze *)
  cost : float option;
  reliability : float option;
  iterations : int option;
  error : Archex_resilience.Error.t option;
      (** present for ["exhausted"] and ["failed"] *)
}

val run :
  ?obs:Archex_obs.Ctx.t ->
  ?on_event:(Archex_obs.Event.t -> unit) ->
  budget:Archex_resilience.Budget.t ->
  Protocol.job -> outcome
(** Run one attempt.  [budget] carries the job's deadline, node and BDD
    limits and (for a daemon job) its cancel hook; its BDD ceiling also
    drives the verdict re-analysis. *)

val retryable : outcome -> remaining_s:float -> floor_s:float -> bool
(** Should the engine re-admit this attempt?  True for an injected
    crash, and for a budget-family failure while the job's original
    deadline still has more than [floor_s] seconds left ([remaining_s]
    is infinite for deadline-less jobs).  Terminal successes,
    infeasibility proofs and invalid inputs never retry. *)

(** The job engine: admission, execution, retry, journal — everything
    between a parsed request and its event stream.

    Jobs run on a {e dedicated} {!Archex_parallel.Pool} ({!submit}
    returns immediately; workers journal and emit their own
    transitions).  Each job holds a private
    {!Archex_parallel.Cancel} token wired into its attempt's budget as
    the cancel hook, so {!drain} winds every in-flight solve down
    cooperatively — the job surfaces as ["interrupted"] in the journal
    and is retried on the next start.

    {b Retry.}  A retryable failure ({!Runner.retryable}) is re-admitted
    after a decorrelated-jitter backoff delay ({!Backoff}, seeded per
    job from the engine seed — deterministic in tests).  Every attempt
    after the first runs under {!Archex_resilience.Budget.reseat} of the
    first attempt's budget, so all attempts share the job's one original
    deadline.  Attempts are capped; the last failure is journaled as a
    ["dead-letter"] record carrying the typed error.

    The engine never sleeps: due retries fire when the server loop calls
    {!tick}, which returns the next due instant so the loop can size its
    select timeout. *)

type config = {
  admission : Admission.config;
  pool_jobs : int;              (** worker domains (dedicated) *)
  max_attempts : int;           (** attempts per job, >= 1 *)
  retry_floor_s : float;
      (** don't retry a budget failure with less than this left of the
          job's original deadline *)
  backoff_base_s : float;
  backoff_cap_s : float;
  backoff_seed : int;
  default_deadline_s : float option;
      (** deadline for jobs that request none; [None] = unlimited *)
  degraded_bdd_limit : int;
      (** BDD ceiling imposed on degraded admissions — small enough to
          force the bounds/sampling rungs *)
}

val default_config : config

val validate_config : config -> (unit, string) result

type t

val create :
  ?obs:Archex_obs.Ctx.t ->
  config:config -> dir:string -> emit:(Archex_obs.Json.t -> unit) ->
  unit -> (t, string) result
(** [dir] hosts the journal ([dir/journal.ndjson]).  [emit] receives
    every protocol event; it is called from worker domains and must be
    thread-safe (the server serializes it). *)

val submit : t -> Protocol.job -> unit
(** Admission-check, journal and enqueue one job; emits ["accepted"] or
    ["rejected"].  After {!drain}, every job is rejected
    (["draining"]). *)

val recover_into : t -> Journal.recovered list -> int
(** Re-admit jobs recovered from a previous process's journal (admission
    is bypassed — they were already accepted): still-["accepted"] jobs
    are enqueued immediately, ["interrupted"] ones after a backoff
    delay with their consumed attempts restored.  Deadlines restart:
    the original absolute deadline died with the process, so each
    recovered job gets a fresh window of its requested [deadline_s].
    Returns the number requeued. *)

val pending : t -> int
(** Admitted jobs not yet in a terminal state. *)

val drain : t -> unit
(** Stop admissions and cancel every in-flight job's token.  Idempotent.
    Queued retries are dropped to ["interrupted"] journal records (the
    next start will pick them up). *)

val draining : t -> bool

val tick : t -> float option
(** Enqueue every retry whose backoff has elapsed; returns the absolute
    {!Archex_obs.Clock} time of the next pending retry, if any. *)

val stats_json : t -> Archex_obs.Json.t
(** Live counters: pending, accepted, rejected, degraded, retries,
    dead-letters, completed, interrupted, draining flag. *)

val shutdown : t -> unit
(** Wait for in-flight work to land (the pool drains its queue), compact
    the journal down to incomplete jobs, and close it.  Call after
    {!drain} (or after {!pending} reaches 0 on a clean shutdown). *)

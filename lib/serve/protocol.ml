module J = Archex_obs.Json

type op = Mr | Ar | Analyze

let op_name = function Mr -> "mr" | Ar -> "ar" | Analyze -> "analyze"

let op_of_name = function
  | "mr" -> Some Mr
  | "ar" -> Some Ar
  | "analyze" -> Some Analyze
  | _ -> None

type job = {
  id : string;
  op : op;
  r_star : float;
  generators : int option;
  backend : Milp.Solver.backend;
  deadline_s : float option;
  max_nodes : int option;
  bdd_limit : int option;
  jobs : int;
}

type request = Job of job | Ping | Stats | Shutdown

let backend_of_name = function
  | "pb" -> Some Milp.Solver.Pseudo_boolean
  | "lp-bb" -> Some Milp.Solver.Lp_branch_bound
  | "brute" -> Some Milp.Solver.Brute_force
  | "portfolio" -> Some Milp.Solver.Portfolio
  | _ -> None

(* Field accessors over one request object; every failure renders a
   reason naming the field, so a bad-request event is actionable. *)
let str_field j name =
  Option.bind (J.mem name j) J.to_str

let num_field j name =
  Option.bind (J.mem name j) J.to_float

let int_field j name ~what =
  match J.mem name j with
  | None -> Ok None
  | Some v -> (
      match J.to_float v with
      | Some f when Float.is_integer f && f > 0. ->
          Ok (Some (int_of_float f))
      | _ -> Error (Printf.sprintf "%s: %S must be a positive integer"
                      what name))

let job_of_fields ~id j =
  let ( let* ) = Result.bind in
  let what = Printf.sprintf "job %s" id in
  let r_star =
    match num_field j "r_star" with Some r -> r | None -> 2e-10
  in
  let* () =
    if r_star > 0. && r_star < 1. then Ok ()
    else Error (Printf.sprintf "%s: \"r_star\" must be in (0, 1)" what)
  in
  let* generators = int_field j "generators" ~what in
  let* backend =
    match str_field j "backend" with
    | None -> Ok Milp.Solver.Pseudo_boolean
    | Some s -> (
        match backend_of_name s with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "%s: unknown backend %S" what s))
  in
  let* deadline_s =
    match num_field j "deadline_s" with
    | None -> (match J.mem "deadline_s" j with
               | None -> Ok None
               | Some _ ->
                   Error (Printf.sprintf
                            "%s: \"deadline_s\" must be a number" what))
    | Some d when d > 0. -> Ok (Some d)
    | Some _ ->
        Error (Printf.sprintf "%s: \"deadline_s\" must be positive" what)
  in
  let* max_nodes = int_field j "max_nodes" ~what in
  let* bdd_limit = int_field j "bdd_limit" ~what in
  let* jobs = int_field j "jobs" ~what in
  let jobs = Option.value jobs ~default:1 in
  let* op =
    match str_field j "op" with
    | Some s -> (
        match op_of_name s with
        | Some op -> Ok op
        | None -> Error (Printf.sprintf "unknown op %S" s))
    | None -> Error "missing \"op\""
  in
  Ok { id; op; r_star; generators; backend; deadline_s; max_nodes;
       bdd_limit; jobs }

let parse_request ~assign_id line =
  match J.of_string line with
  | Error msg -> Error (Printf.sprintf "malformed JSON: %s" msg)
  | Ok j -> (
      match str_field j "op" with
      | Some "ping" -> Ok Ping
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some ("mr" | "ar" | "analyze") ->
          let id =
            match str_field j "id" with
            | Some id when id <> "" -> id
            | _ -> assign_id ()
          in
          Result.map (fun job -> Job job) (job_of_fields ~id j)
      | Some s -> Error (Printf.sprintf "unknown op %S" s)
      | None -> Error "missing \"op\"")

let job_to_json job =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let num_i n = J.Num (float_of_int n) in
  J.Obj
    ([ ("id", J.Str job.id);
       ("op", J.Str (op_name job.op));
       ("r_star", J.Num job.r_star) ]
    @ opt "generators" num_i job.generators
    @ [ ("backend", J.Str (Milp.Solver.backend_name job.backend)) ]
    @ opt "deadline_s" (fun d -> J.Num d) job.deadline_s
    @ opt "max_nodes" num_i job.max_nodes
    @ opt "bdd_limit" num_i job.bdd_limit
    @ [ ("jobs", num_i job.jobs) ])

let job_of_json j =
  match str_field j "id" with
  | Some id when id <> "" -> job_of_fields ~id j
  | _ -> Error "missing \"id\""

(* --- events --- *)

let ev tag fields = J.Obj (("ev", J.Str tag) :: fields)
let num_i n = J.Num (float_of_int n)

let hello ~proto ~pid =
  ev "hello" [ ("proto", num_i proto); ("pid", num_i pid) ]

let accepted ~id ~degraded ~queue_depth =
  ev "accepted"
    ([ ("id", J.Str id) ]
    @ (match degraded with
      | None -> [ ("degraded", J.Bool false) ]
      | Some why -> [ ("degraded", J.Bool true); ("why", J.Str why) ])
    @ [ ("queue_depth", num_i queue_depth) ])

let rejected ~id ~reason ~detail =
  ev "rejected"
    [ ("id", J.Str id); ("reason", J.Str reason); ("detail", J.Str detail) ]

let started ~id ~attempt =
  ev "started" [ ("id", J.Str id); ("attempt", num_i attempt) ]

let progress ~id event =
  let fields =
    match Archex_obs.Event.to_json event with
    | J.Obj fields -> fields
    | other -> [ ("event", other) ]
  in
  ev "progress" (("id", J.Str id) :: fields)

let retry ~id ~attempt ~backoff_s ~error =
  ev "retry"
    [ ("id", J.Str id);
      ("attempt", num_i attempt);
      ("backoff_s", J.Num backoff_s);
      ("error", Archex_resilience.Error.to_json error) ]

let done_ ~id ~status ~verdict ~attempts ~degraded ~elapsed_s ?cost
    ?reliability ?iterations ?error () =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  ev "done"
    ([ ("id", J.Str id);
       ("status", J.Str status);
       ("verdict", J.Str verdict);
       ("attempts", num_i attempts);
       ("degraded", J.Bool degraded);
       ("elapsed_s", J.Num elapsed_s) ]
    @ opt "cost" (fun c -> J.Num c) cost
    @ opt "reliability" (fun r -> J.Num r) reliability
    @ opt "iterations" num_i iterations
    @ opt "error" Archex_resilience.Error.to_json error)

let pong () = ev "pong" []

let draining ~pending = ev "draining" [ ("pending", num_i pending) ]

let bye ~exit_code = ev "bye" [ ("exit_code", num_i exit_code) ]

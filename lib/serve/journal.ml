module J = Archex_obs.Json

type t = {
  dir : string;
  mutable oc : out_channel;
  lock : Mutex.t;
}

let path ~dir = Filename.concat dir "journal.ndjson"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_journal ~dir =
  try
    mkdir_p dir;
    let oc =
      open_out_gen [ Open_append; Open_creat ] 0o644 (path ~dir)
    in
    Ok { dir; oc; lock = Mutex.create () }
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

let append t ~id ~state ?(fields = []) () =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let record =
        J.Obj
          (("at", J.Num (Unix.gettimeofday ()))
          :: ("id", J.Str id)
          :: ("state", J.Str state)
          :: fields)
      in
      output_string t.oc (J.to_string record);
      output_char t.oc '\n';
      (* durability before acknowledgement: the transition must survive
         a crash the instant after this returns *)
      flush t.oc;
      Unix.fsync (Unix.descr_of_out_channel t.oc))

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> close_out_noerr t.oc)

type recovered = {
  job : Protocol.job;
  last_state : string;
  attempts : int;
}

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Fold the ledger to per-job final state.  Records are chronological
   (single appender), so a plain left fold suffices; a torn final line
   is dropped by the relaxed parser. *)
let scan_records contents =
  let records, _dropped = J.parse_lines_relaxed contents in
  let order = ref [] in
  let tbl : (string, string * Protocol.job option * int) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun r ->
      match (Option.bind (J.mem "id" r) J.to_str,
             Option.bind (J.mem "state" r) J.to_str)
      with
      | Some id, Some state ->
          let prev = Hashtbl.find_opt tbl id in
          if prev = None then order := id :: !order;
          let _, spec, attempts =
            Option.value prev ~default:("", None, 0)
          in
          let spec =
            match (spec, J.mem "spec" r) with
            | None, Some s -> (
                match Protocol.job_of_json s with
                | Ok job -> Some job
                | Error _ -> None)
            | s, _ -> s
          in
          let attempts =
            if state = "running" then attempts + 1 else attempts
          in
          Hashtbl.replace tbl id (state, spec, attempts)
      | _ -> ())
    records;
  (List.rev !order, tbl)

let terminal = function
  | "done" | "failed" | "shed" | "dead-letter" -> true
  | _ -> false

let recover ~dir =
  let file = path ~dir in
  if not (Sys.file_exists file) then Ok []
  else
    match read_whole_file file with
    | exception Sys_error msg -> Error msg
    | contents ->
        let order, tbl = scan_records contents in
        Ok
          (List.filter_map
             (fun id ->
               match Hashtbl.find_opt tbl id with
               | Some (state, Some job, attempts) when not (terminal state)
                 ->
                   let last_state =
                     if state = "accepted" then "accepted"
                     else "interrupted"
                   in
                   Some { job; last_state; attempts }
               | _ -> None)
             order)

let compact t ~keep =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let file = path ~dir:t.dir in
      try
        flush t.oc;
        let contents = read_whole_file file in
        let records, _ = J.parse_lines_relaxed contents in
        let kept =
          List.filter
            (fun r ->
              match Option.bind (J.mem "id" r) J.to_str with
              | Some id -> keep id
              | None -> false)
            records
        in
        (* checkpoint discipline: the new ledger is complete and synced
           before it replaces the old one *)
        let tmp = file ^ ".tmp" in
        let oc = open_out tmp in
        (try
           List.iter
             (fun r ->
               output_string oc (J.to_string r);
               output_char oc '\n')
             kept;
           flush oc;
           Unix.fsync (Unix.descr_of_out_channel oc);
           close_out oc
         with e ->
           close_out_noerr oc;
           (try Sys.remove tmp with Sys_error _ -> ());
           raise e);
        close_out_noerr t.oc;
        Sys.rename tmp file;
        t.oc <- open_out_gen [ Open_append; Open_creat ] 0o644 file;
        Ok ()
      with
      | Sys_error msg -> Error msg
      | Unix.Unix_error (e, fn, arg) ->
          Error
            (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

module J = Archex_obs.Json
module Obs = Archex_obs
module B = Archex_resilience.Budget
module Error = Archex_resilience.Error
module P = Archex_parallel

type config = {
  admission : Admission.config;
  pool_jobs : int;
  max_attempts : int;
  retry_floor_s : float;
  backoff_base_s : float;
  backoff_cap_s : float;
  backoff_seed : int;
  default_deadline_s : float option;
  degraded_bdd_limit : int;
}

let default_config =
  { admission = Admission.default;
    pool_jobs = 2;
    max_attempts = 3;
    retry_floor_s = 0.05;
    backoff_base_s = 0.05;
    backoff_cap_s = 2.0;
    backoff_seed = 0xb0ff;
    default_deadline_s = Some 300.;
    degraded_bdd_limit = 256 }

let validate_config c =
  let ( let* ) = Result.bind in
  let* () = Admission.validate c.admission in
  if c.pool_jobs < 1 then Error "pool_jobs must be >= 1"
  else if c.max_attempts < 1 then Error "max_attempts must be >= 1"
  else if c.retry_floor_s < 0. then Error "retry_floor_s must be >= 0"
  else if not (c.backoff_base_s > 0. && c.backoff_base_s <= c.backoff_cap_s)
  then Error "need 0 < backoff_base_s <= backoff_cap_s"
  else if c.degraded_bdd_limit < 1 then
    Error "degraded_bdd_limit must be >= 1"
  else Ok ()

(* One admitted job's in-memory record.  Mutations are guarded by the
   engine lock; the cancel token and the budgets it hooks into are the
   only cross-domain state. *)
type jrec = {
  job : Protocol.job;
  degraded : string option;
  cancel : P.Cancel.t;
  backoff : Backoff.t;
  accepted_at : float;
  mutable attempts : int;
  mutable first_budget : B.t option;   (* reseat prototype *)
  mutable closed : bool;               (* done/failed/shed/dead-letter *)
}

type t = {
  config : config;
  obs : Obs.Ctx.t;
  journal : Journal.t;
  pool : P.Pool.t;
  emit : J.t -> unit;
  lock : Mutex.t;
  table : (string, jrec) Hashtbl.t;
  mutable retries : (float * string) list;   (* sorted by due time *)
  mutable drain_flag : bool;
  mutable live : int;          (* admitted, not yet terminal here *)
  (* counters live in plain atomics (stats must work without a metrics
     registry) and are mirrored into serve.* metrics when one is wired *)
  c_accepted : int Atomic.t;
  c_rejected : int Atomic.t;
  c_degraded : int Atomic.t;
  c_retries : int Atomic.t;
  c_dead_letter : int Atomic.t;
  c_completed : int Atomic.t;
  c_interrupted : int Atomic.t;
  queue_depth : Obs.Metrics.gauge;
  wait_seconds : Obs.Metrics.histogram;
  run_seconds : Obs.Metrics.histogram;
  job_seconds : Obs.Metrics.histogram;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let metrics t = Obs.Ctx.metrics t.obs

let bump t atomic name =
  Atomic.incr atomic;
  Obs.Metrics.incr (Obs.Metrics.counter (metrics t) ("serve." ^ name))

let set_depth t =
  (* called under the lock *)
  Obs.Metrics.set t.queue_depth (float_of_int t.live)

let create ?(obs = Obs.Ctx.null) ~config ~dir ~emit () =
  match validate_config config with
  | Error _ as e -> e
  | Ok () -> (
      match Journal.open_journal ~dir with
      | Error _ as e -> e
      | Ok journal ->
          let m = Obs.Ctx.metrics obs in
          Ok
            { config;
              obs;
              journal;
              pool =
                P.Pool.create ~obs ~dedicated:true ~jobs:config.pool_jobs
                  ();
              emit;
              lock = Mutex.create ();
              table = Hashtbl.create 64;
              retries = [];
              drain_flag = false;
              live = 0;
              c_accepted = Atomic.make 0;
              c_rejected = Atomic.make 0;
              c_degraded = Atomic.make 0;
              c_retries = Atomic.make 0;
              c_dead_letter = Atomic.make 0;
              c_completed = Atomic.make 0;
              c_interrupted = Atomic.make 0;
              queue_depth = Obs.Metrics.gauge m "serve.queue_depth";
              wait_seconds =
                Obs.Metrics.histogram m "serve.wait_seconds";
              run_seconds = Obs.Metrics.histogram m "serve.run_seconds";
              job_seconds = Obs.Metrics.histogram m "serve.job_seconds" })

let now () = Obs.Clock.now ()

(* The attempt's budget.  First attempt: the job's own limits (degraded
   admissions get the tiny BDD ceiling that forces the ladder down) with
   the cancel token as the budget's stop hook.  Retries: Budget.reseat —
   same limits, the job's *original* absolute deadline, so N attempts
   share one wall-clock window. *)
let budget_for t r =
  let job = r.job in
  let bdd =
    match r.degraded with
    | Some _ ->
        Some
          (match job.Protocol.bdd_limit with
          | Some b -> min b t.config.degraded_bdd_limit
          | None -> t.config.degraded_bdd_limit)
    | None -> job.Protocol.bdd_limit
  in
  let cancelled = P.Cancel.guard r.cancel in
  match r.first_budget with
  | Some proto -> (
      match B.deadline_at proto with
      | Some d -> B.reseat ~deadline:d proto
      | None ->
          B.create ~cancelled ?max_nodes:job.Protocol.max_nodes
            ?max_bdd_nodes:bdd ())
  | None ->
      let deadline =
        match job.Protocol.deadline_s with
        | Some _ as d -> d
        | None -> t.config.default_deadline_s
      in
      let b =
        B.create ~cancelled ?deadline ?max_nodes:job.Protocol.max_nodes
          ?max_bdd_nodes:bdd ()
      in
      r.first_budget <- Some b;
      b

let push_retry t due id =
  t.retries <-
    List.sort (fun (a, _) (b, _) -> Float.compare a b)
      ((due, id) :: t.retries)

let err_field e = [ ("error", Error.to_json e) ]

(* One attempt, executed on a pool worker. *)
let rec run_attempt t id =
  match with_lock t (fun () -> Hashtbl.find_opt t.table id) with
  | None -> ()
  | Some r when r.closed -> ()
  | Some r ->
      let attempt, budget =
        with_lock t (fun () ->
            r.attempts <- r.attempts + 1;
            (r.attempts, budget_for t r))
      in
      Journal.append t.journal ~id ~state:"running"
        ~fields:[ ("attempt", J.Num (float_of_int attempt)) ]
        ();
      t.emit (Protocol.started ~id ~attempt);
      if attempt = 1 then
        Obs.Metrics.observe t.wait_seconds (now () -. r.accepted_at);
      let on_event ev = t.emit (Protocol.progress ~id ev) in
      let t0 = now () in
      let outcome = Runner.run ~obs:t.obs ~on_event ~budget r.job in
      Obs.Metrics.observe t.run_seconds (now () -. t0);
      finish t r ~attempt outcome

and finish t r ~attempt outcome =
  let id = r.job.Protocol.id in
  let elapsed_s = now () -. r.accepted_at in
  let degraded = r.degraded <> None in
  let terminal state ~status ~verdict ?error fields =
    Journal.append t.journal ~id ~state ~fields ();
    with_lock t (fun () ->
        r.closed <- state <> "interrupted";
        t.live <- t.live - 1;
        set_depth t);
    Obs.Metrics.observe t.job_seconds elapsed_s;
    t.emit
      (Protocol.done_ ~id ~status ~verdict ~attempts:attempt ~degraded
         ~elapsed_s ?cost:outcome.Runner.cost
         ?reliability:outcome.Runner.reliability
         ?iterations:outcome.Runner.iterations ?error ())
  in
  let cancelled =
    P.Cancel.is_cancelled r.cancel
    || (match outcome.Runner.error with
       | Some (Error.Cancelled _) -> true
       | _ -> false)
  in
  if cancelled then begin
    (* drain (or client abort): not a failure of the job — journal it
       interrupted so the next start retries it *)
    bump t t.c_interrupted "interrupted";
    terminal "interrupted" ~status:"interrupted" ~verdict:"none" []
  end
  else
    match outcome.Runner.error with
    | None ->
        bump t t.c_completed "completed";
        if outcome.Runner.status = "ok" then
          terminal "done" ~status:"ok" ~verdict:outcome.Runner.verdict
            ([ ("verdict", J.Str outcome.Runner.verdict) ]
            @ (match outcome.Runner.cost with
              | Some c -> [ ("cost", J.Num c) ]
              | None -> []))
        else
          terminal "done" ~status:outcome.Runner.status ~verdict:"none"
            [ ("verdict", J.Str "none");
              ("status", J.Str outcome.Runner.status) ]
    | Some e ->
        let remaining_s =
          match Option.bind r.first_budget B.deadline_at with
          | Some d -> d -. now ()
          | None -> Float.infinity
        in
        let can_retry =
          Runner.retryable outcome ~remaining_s
            ~floor_s:t.config.retry_floor_s
          && attempt < t.config.max_attempts
          && not (with_lock t (fun () -> t.drain_flag))
        in
        if can_retry then begin
          let delay = Backoff.next r.backoff in
          let due = now () +. delay in
          bump t t.c_retries "retries";
          Journal.append t.journal ~id ~state:"backoff"
            ~fields:
              (("attempt", J.Num (float_of_int attempt))
              :: ("backoff_s", J.Num delay)
              :: err_field e)
            ();
          t.emit (Protocol.retry ~id ~attempt ~backoff_s:delay ~error:e);
          with_lock t (fun () -> push_retry t due id)
        end
        else if
          Runner.retryable outcome ~remaining_s:Float.infinity
            ~floor_s:t.config.retry_floor_s
          && attempt >= t.config.max_attempts
        then begin
          (* retryable in principle, out of attempts: dead-letter *)
          bump t t.c_dead_letter "dead_letter";
          terminal "dead-letter" ~status:"failed" ~verdict:"dead-letter"
            ~error:e (err_field e)
        end
        else
          terminal "failed" ~status:outcome.Runner.status ~verdict:"none"
            ~error:e (err_field e)

let submit t (job : Protocol.job) =
  let id = job.Protocol.id in
  let decision =
    with_lock t (fun () ->
        if t.drain_flag then
          `Reject ("draining", "server is draining, not accepting jobs")
        else
          match
            Admission.decide t.config.admission ~queue_depth:t.live job
          with
          | Admission.Reject { reason; detail } -> `Reject (reason, detail)
          | Admission.Accept -> `Admit None
          | Admission.Accept_degraded why -> `Admit (Some why))
  in
  match decision with
  | `Reject (reason, detail) ->
      bump t t.c_rejected "rejected";
      (* a rejected job is journaled as shed: the ledger records every
         admission decision, and "shed" is terminal on recovery *)
      Journal.append t.journal ~id ~state:"shed"
        ~fields:
          [ ("reason", J.Str reason);
            ("spec", Protocol.job_to_json job) ]
        ();
      t.emit (Protocol.rejected ~id ~reason ~detail)
  | `Admit degraded ->
      let r =
        { job;
          degraded;
          cancel = P.Cancel.create ();
          backoff =
            Backoff.create
              ~seed:(t.config.backoff_seed + Hashtbl.hash id)
              ~base:t.config.backoff_base_s ~cap:t.config.backoff_cap_s
              ();
          accepted_at = now ();
          attempts = 0;
          first_budget = None;
          closed = false }
      in
      let depth =
        with_lock t (fun () ->
            Hashtbl.replace t.table id r;
            t.live <- t.live + 1;
            set_depth t;
            t.live)
      in
      bump t t.c_accepted "accepted";
      if degraded <> None then bump t t.c_degraded "degraded";
      Journal.append t.journal ~id ~state:"accepted"
        ~fields:
          (("spec", Protocol.job_to_json job)
          ::
          (match degraded with
          | Some why -> [ ("degraded", J.Str why) ]
          | None -> []))
        ();
      t.emit (Protocol.accepted ~id ~degraded ~queue_depth:depth);
      P.Pool.submit t.pool (fun () -> run_attempt t id)

let recover_into t recs =
  List.iter
    (fun { Journal.job; last_state; attempts } ->
      let id = job.Protocol.id in
      let r =
        { job;
          degraded = None;
          cancel = P.Cancel.create ();
          backoff =
            Backoff.create
              ~seed:(t.config.backoff_seed + Hashtbl.hash id)
              ~base:t.config.backoff_base_s ~cap:t.config.backoff_cap_s
              ();
          accepted_at = now ();
          attempts;
          first_budget = None;
          closed = false }
      in
      with_lock t (fun () ->
          Hashtbl.replace t.table id r;
          t.live <- t.live + 1;
          set_depth t);
      if last_state = "accepted" then
        P.Pool.submit t.pool (fun () -> run_attempt t id)
      else begin
        (* caught mid-run by the crash: mark the transition in the new
           ledger and retry under backoff *)
        bump t t.c_interrupted "interrupted";
        Journal.append t.journal ~id ~state:"interrupted"
          ~fields:[ ("recovered", J.Bool true) ]
          ();
        let due = now () +. Backoff.next r.backoff in
        with_lock t (fun () -> push_retry t due id)
      end)
    recs;
  List.length recs

let pending t = with_lock t (fun () -> t.live)

let drain t =
  let to_interrupt =
    with_lock t (fun () ->
        if t.drain_flag then []
        else begin
          t.drain_flag <- true;
          Hashtbl.iter
            (fun _ r -> if not r.closed then P.Cancel.cancel r.cancel)
            t.table;
          (* queued retries will never fire: journal them interrupted so
             the next start requeues them *)
          let waiting = List.map snd t.retries in
          t.retries <- [];
          t.live <- t.live - List.length waiting;
          set_depth t;
          waiting
        end)
  in
  List.iter
    (fun id ->
      bump t t.c_interrupted "interrupted";
      Journal.append t.journal ~id ~state:"interrupted"
        ~fields:[ ("drained", J.Bool true) ]
        ())
    to_interrupt

let draining t = with_lock t (fun () -> t.drain_flag)

let tick t =
  let due, next =
    with_lock t (fun () ->
        let now_ = now () in
        let due, rest =
          List.partition (fun (at, _) -> at <= now_) t.retries
        in
        t.retries <- rest;
        (List.map snd due, match rest with (at, _) :: _ -> Some at
                                         | [] -> None))
  in
  List.iter
    (fun id -> P.Pool.submit t.pool (fun () -> run_attempt t id))
    due;
  next

let stats_json t =
  let pending_, drain_flag, waiting =
    with_lock t (fun () -> (t.live, t.drain_flag, List.length t.retries))
  in
  let n name a = (name, J.Num (float_of_int (Atomic.get a))) in
  J.Obj
    [ ("ev", J.Str "stats");
      ("pending", J.Num (float_of_int pending_));
      ("waiting_retry", J.Num (float_of_int waiting));
      ("draining", J.Bool drain_flag);
      n "accepted" t.c_accepted;
      n "rejected" t.c_rejected;
      n "degraded" t.c_degraded;
      n "retries" t.c_retries;
      n "dead_letter" t.c_dead_letter;
      n "completed" t.c_completed;
      n "interrupted" t.c_interrupted ]

let shutdown t =
  P.Pool.shutdown t.pool;
  (* the ledger keeps only jobs a future start must care about *)
  (match
     Journal.compact t.journal ~keep:(fun id ->
         match Hashtbl.find_opt t.table id with
         | Some r -> not r.closed
         | None -> false)
   with
  | Ok () -> ()
  | Error msg ->
      Format.eprintf "archex serve: journal compaction failed: %s@." msg);
  Journal.close t.journal

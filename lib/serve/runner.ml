module B = Archex_resilience.Budget
module Error = Archex_resilience.Error
module Faults = Archex_resilience.Faults

type outcome = {
  status : string;
  verdict : string;
  cost : float option;
  reliability : float option;
  iterations : int option;
  error : Error.t option;
}

let instance_of = function
  | None -> Eps.Eps_template.base ()
  | Some g -> Eps.Eps_template.make ~generators:g

(* The worst ladder rung across the report's per-sink verdicts: the one
   figure a client can trust the least. *)
let verdict_of_report (report : Archex.Rel_analysis.report) =
  let rank v =
    match v with
    | Archex_resilience.Verdict.Exact _ -> 0
    | Archex_resilience.Verdict.Bounded _ -> 1
    | Archex_resilience.Verdict.Sampled _ -> 2
  in
  match report.Archex.Rel_analysis.verdicts with
  | [] -> "exact"
  | (_, v0) :: rest ->
      let worst =
        List.fold_left
          (fun acc (_, v) -> if rank v > rank acc then v else acc)
          v0 rest
      in
      Archex_resilience.Verdict.method_name worst

(* Which rung produced the answer: re-analyze the final configuration
   under the job's BDD ceiling (deadline-free — the verdict should name
   the degradation mode the job ran in, not whatever time was left at
   the finish line). *)
let verdict_of_config ?obs ~budget template config =
  let verdict_budget =
    match B.bdd_node_limit budget with
    | None -> B.unlimited
    | Some n -> B.create ~max_bdd_nodes:n ()
  in
  let report =
    Archex.Rel_analysis.analyze ?obs ~budget:verdict_budget template config
  in
  verdict_of_report report

let failed error =
  { status = "failed";
    verdict = "none";
    cost = None;
    reliability = None;
    iterations = None;
    error = Some error }

let of_unfeasible reason n_iterations =
  let error, status =
    match reason with
    | Archex.Synthesis.Budget_exhausted { error; _ } ->
        (Some error, "exhausted")
    | _ -> (None, "unfeasible")
  in
  { status;
    verdict = "none";
    cost = None;
    reliability = None;
    iterations = n_iterations;
    error }

let of_architecture ?obs ~budget ~iterations template
    (arch : Archex.Synthesis.architecture) =
  { status = "ok";
    verdict =
      verdict_of_config ?obs ~budget template arch.Archex.Synthesis.config;
    cost = Some arch.Archex.Synthesis.cost;
    reliability = Some arch.Archex.Synthesis.reliability;
    iterations;
    error = None }

let run ?obs ?on_event ~budget (job : Protocol.job) =
  if Faults.probe Faults.Job_crash then
    failed
      (Error.Internal { stage = "serve.run"; detail = "injected: job-crash" })
  else
    match
      Error.guard ~stage:"serve.run" @@ fun () ->
      let inst = instance_of job.Protocol.generators in
      let template = inst.Eps.Eps_template.template in
      match job.Protocol.op with
      | Protocol.Mr -> (
          match
            Archex.Ilp_mr.run_checked ?obs ?on_event
              ~backend:job.Protocol.backend ~budget ~jobs:job.Protocol.jobs
              template ~r_star:job.Protocol.r_star
          with
          | Error e -> failed e
          | Ok (Archex.Synthesis.Synthesized (arch, trace, _)) ->
              of_architecture ?obs ~budget
                ~iterations:(Some (List.length trace))
                template arch
          | Ok (Archex.Synthesis.Unfeasible (reason, trace, _)) ->
              of_unfeasible reason (Some (List.length trace)))
      | Protocol.Ar -> (
          match
            Archex.Ilp_ar.run ?obs ?on_event ~backend:job.Protocol.backend
              ~budget ~jobs:job.Protocol.jobs template
              ~r_star:job.Protocol.r_star
          with
          | Archex.Synthesis.Synthesized (arch, _, _) ->
              of_architecture ?obs ~budget ~iterations:None template arch
          | Archex.Synthesis.Unfeasible (reason, _, _) ->
              of_unfeasible reason None)
      | Protocol.Analyze ->
          let config =
            Archlib.Template.config_of_edges template
              (Archlib.Template.candidate_edges template)
          in
          let report =
            Archex.Rel_analysis.analyze ?obs ?on_event ~budget
              ~jobs:job.Protocol.jobs template config
          in
          { status = "ok";
            verdict = verdict_of_report report;
            cost =
              Some (Archlib.Template.configuration_cost template config);
            reliability = Some report.Archex.Rel_analysis.worst;
            iterations = None;
            error = None }
    with
    | Ok outcome -> outcome
    | Error e -> failed e

let retryable outcome ~remaining_s ~floor_s =
  match outcome.error with
  | None -> false
  | Some (Error.Internal { detail; _ }) ->
      String.starts_with ~prefix:"injected:" detail
  | Some e -> Error.is_budget e && remaining_s > floor_s

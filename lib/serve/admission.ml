type config = {
  capacity : int;
  shed_watermark : float;
  max_generators : int;
  tight_deadline_s : float;
}

let default =
  { capacity = 16;
    shed_watermark = 0.75;
    max_generators = 12;
    tight_deadline_s = 0.5 }

let validate c =
  if c.capacity < 1 then Error "capacity must be >= 1"
  else if not (c.shed_watermark > 0. && c.shed_watermark <= 1.) then
    Error "shed_watermark must be in (0, 1]"
  else if c.max_generators < 1 then Error "max_generators must be >= 1"
  else if c.tight_deadline_s < 0. then
    Error "tight_deadline_s must be >= 0"
  else Ok ()

type decision =
  | Accept
  | Accept_degraded of string
  | Reject of { reason : string; detail : string }

let decide c ~queue_depth (job : Protocol.job) =
  let size = Option.value job.Protocol.generators ~default:0 in
  if size > c.max_generators then
    Reject
      { reason = "too-large";
        detail =
          Printf.sprintf "%d generators exceeds the served maximum %d"
            size c.max_generators }
  else if queue_depth >= c.capacity then
    Reject
      { reason = "queue-full";
        detail =
          Printf.sprintf "%d jobs pending at capacity %d" queue_depth
            c.capacity }
  else
    (* injected Queue_overload pressure surfaces exactly like a real
       backlog: the job is admitted, but degraded *)
    let pressured =
      float_of_int queue_depth
      >= c.shed_watermark *. float_of_int c.capacity
      || Archex_resilience.Faults.probe Archex_resilience.Faults.Queue_overload
    in
    if pressured then Accept_degraded "queue-pressure"
    else
      match job.Protocol.deadline_s with
      | Some d when d < c.tight_deadline_s ->
          Accept_degraded "tight-deadline"
      | _ -> Accept

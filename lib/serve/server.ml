module J = Archex_obs.Json
module Obs = Archex_obs
module Faults = Archex_resilience.Faults

let proto_version = 1

(* The drain flag a signal handler flips: one atomic, polled by the
   serve loop (and by nothing else) — async-signal-safe by construction. *)
let drain_flag = Atomic.make false
let request_drain () = Atomic.set drain_flag true
let drain_requested () = Atomic.get drain_flag
let reset_drain () = Atomic.set drain_flag false

let exit_ok = 0
let exit_signal = 130

let is_progress = function
  | J.Obj (("ev", J.Str "progress") :: _) -> true
  | _ -> false

(* Wrap a raw sink with the slow-client fault: an injected probe drops
   progress events (never terminal ones) — the observable symptom of a
   client that stopped draining its stream. *)
let with_slow_client metrics sink ev =
  if is_progress ev && Faults.probe Faults.Slow_client then
    Obs.Metrics.incr (Obs.Metrics.counter metrics "serve.slow_client_drops")
  else sink ev

let fresh_id =
  let counter = Atomic.make 0 in
  fun () -> Printf.sprintf "j%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add counter 1 + 1)

(* Requeue whatever the previous process's journal left unfinished. *)
let recover_previous engine ~dir =
  match Journal.recover ~dir with
  | Error msg ->
      Format.eprintf "archex serve: journal unreadable, starting empty: %s@."
        msg
  | Ok [] -> ()
  | Ok recs ->
      let n = Engine.recover_into engine recs in
      Format.eprintf "archex serve: recovered %d unfinished job(s)@." n

type control = [ `None | `Shutdown ]

let handle_line engine ~emit ~(control : control ref) line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.parse_request ~assign_id:fresh_id line with
    | Error msg ->
        emit (Protocol.rejected ~id:"" ~reason:"bad-request" ~detail:msg)
    | Ok Protocol.Ping -> emit (Protocol.pong ())
    | Ok Protocol.Stats -> emit (Engine.stats_json engine)
    | Ok Protocol.Shutdown -> control := `Shutdown
    | Ok (Protocol.Job job) -> Engine.submit engine job

(* The shared wind-down: [cancel_inflight] is the signal path (drain
   cancels running jobs so they journal as interrupted); the clean path
   lets them finish first. *)
let quiesce engine ~emit ~cancel_inflight ~poll =
  if cancel_inflight then Engine.drain engine;
  emit (Protocol.draining ~pending:(Engine.pending engine));
  let rec wait () =
    ignore (Engine.tick engine);
    if Engine.pending engine > 0 then begin
      poll ();
      (* a signal arriving during a clean drain escalates to cancel *)
      if drain_requested () && not (Engine.draining engine) then
        Engine.drain engine;
      wait ()
    end
  in
  wait ();
  Engine.drain engine;
  Engine.shutdown engine

let serve_pipe ?(obs = Obs.Ctx.null) ~config ~dir ic oc =
  let metrics = Obs.Ctx.metrics obs in
  let emit_lock = Mutex.create () in
  let raw ev =
    Mutex.lock emit_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_lock)
      (fun () ->
        output_string oc (J.to_string ev);
        output_char oc '\n';
        flush oc)
  in
  let emit = with_slow_client metrics raw in
  match Engine.create ~obs ~config ~dir ~emit () with
  | Error msg ->
      Format.eprintf "archex serve: %s@." msg;
      1
  | Ok engine ->
      raw (Protocol.hello ~proto:proto_version ~pid:(Unix.getpid ()));
      recover_previous engine ~dir;
      (* a reader domain blocks on input_line; the main loop stays free
         to fire retries and poll the drain flag *)
      let inbox = Queue.create () in
      let inbox_lock = Mutex.create () in
      let eof = Atomic.make false in
      let reader =
        Domain.spawn (fun () ->
            (try
               while true do
                 let line = input_line ic in
                 Mutex.lock inbox_lock;
                 Queue.add line inbox;
                 Mutex.unlock inbox_lock
               done
             with End_of_file | Sys_error _ -> ());
            Atomic.set eof true)
      in
      let control = ref `None in
      let signalled = ref false in
      let finished () =
        !signalled
        || (Atomic.get eof || !control = `Shutdown)
           &&
           (Mutex.lock inbox_lock;
            let empty = Queue.is_empty inbox in
            Mutex.unlock inbox_lock;
            empty)
      in
      while not (finished ()) do
        if drain_requested () && not !signalled then signalled := true;
        if !signalled then ()
        else begin
          let lines =
            Mutex.lock inbox_lock;
            let ls = List.of_seq (Queue.to_seq inbox) in
            Queue.clear inbox;
            Mutex.unlock inbox_lock;
            ls
          in
          List.iter (handle_line engine ~emit ~control) lines
        end;
        ignore (Engine.tick engine);
        if not (finished ()) then Unix.sleepf 0.02
      done;
      let code = if !signalled then exit_signal else exit_ok in
      quiesce engine ~emit ~cancel_inflight:!signalled
        ~poll:(fun () -> Unix.sleepf 0.02);
      raw (Protocol.bye ~exit_code:code);
      if Atomic.get eof then Domain.join reader;
      code

(* --- Unix-domain-socket transport --- *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable alive : bool;
}

let client_send lock c ev =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      if c.alive then
        let line = J.to_string ev ^ "\n" in
        try
          let len = String.length line in
          let rec go off =
            if off < len then
              let n =
                Unix.write_substring c.fd line off (len - off)
              in
              go (off + n)
          in
          go 0
        with Unix.Unix_error _ -> c.alive <- false)

let serve_socket ?(obs = Obs.Ctx.null) ~config ~dir path =
  let metrics = Obs.Ctx.metrics obs in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let io_lock = Mutex.create () in
  let clients : client list ref = ref [] in
  (* job id → the client that submitted it: engine events route back to
     their requester, and a dead client's events are simply dropped *)
  let routes : (string, client) Hashtbl.t = Hashtbl.create 64 in
  let routes_lock = Mutex.create () in
  let route_of ev =
    match Option.bind (J.mem "id" ev) J.to_str with
    | None -> None
    | Some id ->
        Mutex.lock routes_lock;
        let c = Hashtbl.find_opt routes id in
        Mutex.unlock routes_lock;
        c
  in
  let raw ev =
    match route_of ev with
    | Some c -> client_send io_lock c ev
    | None -> ()
  in
  let emit = with_slow_client metrics raw in
  match Engine.create ~obs ~config ~dir ~emit () with
  | Error msg ->
      Unix.close listen_fd;
      Format.eprintf "archex serve: %s@." msg;
      1
  | Ok engine ->
      recover_previous engine ~dir;
      let control = ref `None in
      let signalled = ref false in
      let handle_client_line c line =
        let line = String.trim line in
        if line <> "" then
          match Protocol.parse_request ~assign_id:fresh_id line with
          | Error msg ->
              client_send io_lock c
                (Protocol.rejected ~id:"" ~reason:"bad-request"
                   ~detail:msg)
          | Ok Protocol.Ping -> client_send io_lock c (Protocol.pong ())
          | Ok Protocol.Stats ->
              client_send io_lock c (Engine.stats_json engine)
          | Ok Protocol.Shutdown -> control := `Shutdown
          | Ok (Protocol.Job job) ->
              Mutex.lock routes_lock;
              Hashtbl.replace routes job.Protocol.id c;
              Mutex.unlock routes_lock;
              Engine.submit engine job
      in
      let drain_buffer c =
        let data = Buffer.contents c.buf in
        let rec go start =
          match String.index_from_opt data start '\n' with
          | None ->
              Buffer.clear c.buf;
              Buffer.add_string c.buf
                (String.sub data start (String.length data - start))
          | Some nl ->
              handle_client_line c (String.sub data start (nl - start));
              go (nl + 1)
        in
        go 0
      in
      let read_client c =
        let bytes = Bytes.create 4096 in
        match Unix.read c.fd bytes 0 4096 with
        | 0 -> c.alive <- false
        | n ->
            Buffer.add_subbytes c.buf bytes 0 n;
            drain_buffer c
        | exception Unix.Unix_error _ -> c.alive <- false
      in
      while
        (not !signalled) && !control <> `Shutdown
      do
        if drain_requested () then signalled := true
        else begin
          let fds = listen_fd :: List.map (fun c -> c.fd) !clients in
          let readable, _, _ =
            try Unix.select fds [] [] 0.05
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              if fd = listen_fd then begin
                let cfd, _ = Unix.accept listen_fd in
                let c = { fd = cfd; buf = Buffer.create 256; alive = true }
                in
                clients := c :: !clients;
                client_send io_lock c
                  (Protocol.hello ~proto:proto_version
                     ~pid:(Unix.getpid ()))
              end
              else
                match List.find_opt (fun c -> c.fd = fd) !clients with
                | Some c -> read_client c
                | None -> ())
            readable;
          (* reap dead clients (and their routes) *)
          let dead, live = List.partition (fun c -> not c.alive) !clients in
          if dead <> [] then begin
            List.iter (fun c -> try Unix.close c.fd with _ -> ()) dead;
            Mutex.lock routes_lock;
            Hashtbl.iter
              (fun id c -> if not c.alive then Hashtbl.remove routes id)
              (Hashtbl.copy routes);
            Mutex.unlock routes_lock;
            clients := live
          end;
          ignore (Engine.tick engine)
        end
      done;
      let code = if !signalled then exit_signal else exit_ok in
      quiesce engine ~emit ~cancel_inflight:!signalled
        ~poll:(fun () -> Unix.sleepf 0.02);
      List.iter
        (fun c ->
          client_send io_lock c (Protocol.bye ~exit_code:code);
          try Unix.close c.fd with _ -> ())
        !clients;
      Unix.close listen_fd;
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      code

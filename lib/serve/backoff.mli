(** Decorrelated-jitter exponential backoff.

    The retry scheduler needs delays that grow roughly exponentially but
    do not synchronize: if every retried job waited exactly
    [base · 2^attempt], a burst of correlated failures (a restarted
    daemon requeueing its interrupted jobs) would thunder back in lock
    step.  The decorrelated-jitter scheme draws each delay uniformly
    from [[base, 3 · previous]] and caps it, so consecutive delays
    spread apart while staying bounded.

    The generator is a seeded LCG (the same family the fault injector
    and the PB solver's phase jitter use), so a fixed seed replays a
    fixed delay sequence — which is what makes the retry tests
    deterministic. *)

type t

val create : ?seed:int -> ?base:float -> ?cap:float -> unit -> t
(** [base] (default 0.05 s) is the smallest delay and the first draw's
    lower bound; [cap] (default 5 s) bounds every delay.
    @raise Invalid_argument unless [0 < base <= cap]. *)

val next : t -> float
(** Draw the next delay: uniform in [[base, 3 · previous]] clamped to
    [cap] ([previous] starts at [base]).  Mutates the generator. *)

val reset : t -> unit
(** Rewind to the initial state: the next {!next} replays the first
    draw. *)

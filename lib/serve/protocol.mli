(** The serve wire protocol: line-delimited JSON, one value per line.

    A client writes {e requests} (one JSON object per line) and reads
    {e events}.  The protocol is deliberately flat — every event carries
    an ["ev"] tag and, when job-scoped, the job ["id"] — so a client can
    be five lines of shell ([archex serve --pipe] under a heredoc) and
    the CI smoke test can grep the stream.

    {b Requests.}
    - [{"op":"mr", ...}] / [{"op":"ar", ...}] — synthesize over an EPS
      template (the paper's base template, or the scaling family when
      ["generators"] is given).  Fields: optional ["id"] (assigned when
      absent), ["r_star"] (default 2e-10), ["generators"],
      ["backend"] (["pb"] / ["lp-bb"] / ["brute"] / ["portfolio"]),
      ["deadline_s"], ["max_nodes"], ["bdd_limit"], ["jobs"].
    - [{"op":"analyze", ...}] — reliability of the template's {e full}
      candidate configuration (every candidate edge selected): the
      maximal architecture the template can express.
    - [{"op":"ping"}], [{"op":"stats"}], [{"op":"shutdown"}] — control.

    {b Events} (server → client): ["hello"], ["accepted"] (with
    ["degraded"] and the admission reason when load-shed into degraded
    mode), ["rejected"] (typed ["reason"]: ["queue-full"],
    ["too-large"], ["bad-request"]), ["started"], ["progress"],
    ["retry"] (with ["backoff_s"] and the typed error), ["done"] (with
    ["status"], ["verdict"], figures), ["pong"], ["stats"],
    ["draining"], ["bye"]. *)

type op = Mr | Ar | Analyze

val op_name : op -> string

type job = {
  id : string;
  op : op;
  r_star : float;
  generators : int option;      (** scaling family; [None] = base *)
  backend : Milp.Solver.backend;
  deadline_s : float option;
  max_nodes : int option;
  bdd_limit : int option;
  jobs : int;                   (** per-sink analysis domains *)
}

type request =
  | Job of job
  | Ping
  | Stats
  | Shutdown

val parse_request :
  assign_id:(unit -> string) -> string -> (request, string) result
(** Parse one request line.  [assign_id] supplies an id when the client
    sent none.  The error string is a human-readable reason suitable for
    a ["rejected"]/["bad-request"] event. *)

val job_to_json : job -> Archex_obs.Json.t
(** Canonical re-rendering of a job spec — what the journal stores, and
    what recovery parses back. *)

val job_of_json : Archex_obs.Json.t -> (job, string) result

(** Event builders — every constructor renders one NDJSON-safe object. *)

val hello : proto:int -> pid:int -> Archex_obs.Json.t
val accepted :
  id:string -> degraded:string option -> queue_depth:int ->
  Archex_obs.Json.t
val rejected : id:string -> reason:string -> detail:string ->
  Archex_obs.Json.t
val started : id:string -> attempt:int -> Archex_obs.Json.t
val progress : id:string -> Archex_obs.Event.t -> Archex_obs.Json.t
val retry :
  id:string -> attempt:int -> backoff_s:float ->
  error:Archex_resilience.Error.t -> Archex_obs.Json.t
val done_ :
  id:string -> status:string -> verdict:string -> attempts:int ->
  degraded:bool -> elapsed_s:float ->
  ?cost:float -> ?reliability:float -> ?iterations:int ->
  ?error:Archex_resilience.Error.t -> unit -> Archex_obs.Json.t
val pong : unit -> Archex_obs.Json.t
val draining : pending:int -> Archex_obs.Json.t
val bye : exit_code:int -> Archex_obs.Json.t
